#include "app/web_browser.hpp"

#include <gtest/gtest.h>

#include <queue>

#include "sim/simulation.hpp"

namespace emptcp::app {
namespace {

TEST(WebPageTest, CnnLikeComposition) {
  const WebPage page = WebPage::cnn_like(42);
  EXPECT_EQ(page.object_sizes.size(), 107u);  // paper: 107 objects
  EXPECT_EQ(page.object_sizes[0], 100u * 1024u);
  std::size_t small = 0;
  for (std::uint64_t s : page.object_sizes) {
    EXPECT_GE(s, 300u);
    EXPECT_LE(s, 256u * 1024u);  // "almost all objects ... small (<256 KB)"
    if (s < 256 * 1024) ++small;
  }
  EXPECT_EQ(small, page.object_sizes.size());
  // Total in the plausible range for the 2014 CNN home page.
  EXPECT_GT(page.total_bytes(), 500u * 1024u);
  EXPECT_LT(page.total_bytes(), 6u * 1024u * 1024u);
}

TEST(WebPageTest, DeterministicPerSeed) {
  const WebPage a = WebPage::cnn_like(7);
  const WebPage b = WebPage::cnn_like(7);
  const WebPage c = WebPage::cnn_like(8);
  EXPECT_EQ(a.object_sizes, b.object_sizes);
  EXPECT_NE(a.object_sizes, c.object_sizes);
}

TEST(WebPageTest, RoundRobinAssignmentCoversAllObjectsOnce) {
  const WebPage page = WebPage::cnn_like(1, 20);
  const std::size_t parallel = 6;
  std::vector<std::uint64_t> seen;
  for (std::size_t c = 0; c < parallel; ++c) {
    for (std::size_t r = 0;; ++r) {
      const std::uint64_t s = page.object_for(c, r, parallel);
      if (s == 0) break;
      seen.push_back(s);
    }
  }
  EXPECT_EQ(seen.size(), page.object_sizes.size());
}

/// In-process fake connection: "server" replies after a simulated delay,
/// sized by the same round-robin rule the real FileServer uses.
class FakeConn final : public ClientConnHandle {
 public:
  FakeConn(sim::Simulation& sim, const WebPage& page, std::size_t index,
           std::size_t parallel)
      : sim_(sim), page_(page), index_(index), parallel_(parallel) {}

  void set_callbacks(Callbacks cb) override { cb_ = std::move(cb); }
  void connect() override {
    sim_.in(sim::milliseconds(10), [this] {
      if (cb_.on_established) cb_.on_established();
    });
  }
  void send(std::uint64_t) override {
    const std::uint64_t size = page_.object_for(index_, request_, parallel_);
    ++request_;
    sim_.in(sim::milliseconds(20), [this, size] {
      received_ += size;
      if (cb_.on_data) cb_.on_data(size);
    });
  }
  void shutdown_write() override { shut_ = true; }
  [[nodiscard]] std::uint64_t bytes_received() const override {
    return received_;
  }
  [[nodiscard]] bool shut() const { return shut_; }

 private:
  sim::Simulation& sim_;
  const WebPage& page_;
  std::size_t index_;
  std::size_t parallel_;
  std::size_t request_ = 0;
  std::uint64_t received_ = 0;
  Callbacks cb_;
  bool shut_ = false;
};

TEST(WebBrowserClientTest, FetchesWholePageAndReportsLoad) {
  sim::Simulation sim(1);
  const WebPage page = WebPage::cnn_like(3);
  WebBrowserClient::Config cfg;
  cfg.parallel = 6;
  bool loaded = false;
  std::size_t created = 0;
  std::vector<FakeConn*> conns;
  WebBrowserClient browser(
      page, cfg,
      [&]() -> std::unique_ptr<ClientConnHandle> {
        auto conn = std::make_unique<FakeConn>(sim, page, created++,
                                               cfg.parallel);
        conns.push_back(conn.get());
        return conn;
      },
      [&] { loaded = true; });
  browser.start();
  sim.run_until(sim::seconds(60));

  EXPECT_TRUE(loaded);
  EXPECT_TRUE(browser.page_loaded());
  EXPECT_EQ(browser.bytes_received(), page.total_bytes());
  EXPECT_EQ(created, 6u);
  for (FakeConn* c : conns) EXPECT_TRUE(c->shut());
}

TEST(WebBrowserClientTest, SingleConnectionSequentialFetch) {
  sim::Simulation sim(1);
  const WebPage page = WebPage::cnn_like(3, 10);
  WebBrowserClient::Config cfg;
  cfg.parallel = 1;
  bool loaded = false;
  WebBrowserClient browser(
      page, cfg,
      [&]() -> std::unique_ptr<ClientConnHandle> {
        return std::make_unique<FakeConn>(sim, page, 0, 1);
      },
      [&] { loaded = true; });
  browser.start();
  sim.run_until(sim::seconds(60));
  EXPECT_TRUE(loaded);
  EXPECT_EQ(browser.bytes_received(), page.total_bytes());
}

}  // namespace
}  // namespace emptcp::app
