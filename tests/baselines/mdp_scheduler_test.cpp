#include "baselines/mdp_scheduler.hpp"

#include <gtest/gtest.h>

#include "energy/device_profile.hpp"

namespace emptcp::baseline {
namespace {

energy::EnergyModel model() {
  return energy::DeviceProfile::galaxy_s3().model();
}

std::vector<std::pair<double, double>> static_trace(double wifi, double cell,
                                                    int n = 100) {
  return std::vector<std::pair<double, double>>(
      static_cast<std::size_t>(n), {wifi, cell});
}

TEST(MdpSchedulerTest, StateIndexingCoversGrid) {
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  // Default config: 4 edges -> 5 bins per axis -> 25 states.
  EXPECT_EQ(mdp.state_count(), 25u);
  EXPECT_EQ(mdp.state_of(0.0, 0.0), 0u);
  EXPECT_NE(mdp.state_of(5.0, 0.0), mdp.state_of(0.0, 5.0));
  EXPECT_EQ(mdp.state_of(100.0, 100.0), mdp.state_count() - 1);
}

TEST(MdpSchedulerTest, PolicyBeforeSolveThrows) {
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  EXPECT_THROW(mdp.policy(0), std::logic_error);
}

TEST(MdpSchedulerTest, CostOrdering) {
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  const std::size_t s = mdp.state_of(5.0, 5.0);
  // With our energy model, WiFi-only per second < cell-only < both.
  EXPECT_LT(mdp.cost(s, MdpScheduler::Action::kWifiOnly),
            mdp.cost(s, MdpScheduler::Action::kCellOnly));
  EXPECT_LT(mdp.cost(s, MdpScheduler::Action::kCellOnly),
            mdp.cost(s, MdpScheduler::Action::kBoth));
}

TEST(MdpSchedulerTest, UnusablePathsAreProhibitive) {
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  const std::size_t dead_wifi = mdp.state_of(0.0, 5.0);
  EXPECT_GT(mdp.cost(dead_wifi, MdpScheduler::Action::kWifiOnly), 1e6);
  EXPECT_LT(mdp.cost(dead_wifi, MdpScheduler::Action::kCellOnly), 1e6);
}

TEST(MdpSchedulerTest, ReproducesPaperFinding_WifiOnlyEverywhere) {
  // Paper §4.6: "the generated MDP schedulers choose WiFi-only for all
  // scenarios" because LTE's power per second never drops below WiFi's.
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  mdp.fit(static_trace(8.0, 8.0));
  EXPECT_GT(mdp.solve(), 0);
  for (std::size_t s = 0; s < mdp.state_count(); ++s) {
    const std::size_t wifi_bin = s / 5;
    if (wifi_bin == 0) continue;  // WiFi unusable: anything goes
    EXPECT_EQ(mdp.policy(s), MdpScheduler::Action::kWifiOnly)
        << "state " << s;
  }
}

TEST(MdpSchedulerTest, DeadWifiStatePrefersCellular) {
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  mdp.fit(static_trace(0.0, 8.0));
  mdp.solve();
  EXPECT_EQ(mdp.action_for(0.0, 8.0), MdpScheduler::Action::kCellOnly);
}

TEST(MdpSchedulerTest, FitLearnsTransitions) {
  // Alternating trace: solving still converges and the policy exists for
  // both visited states.
  MdpScheduler mdp(model(), MdpScheduler::Config{});
  std::vector<std::pair<double, double>> trace;
  for (int i = 0; i < 200; ++i) {
    trace.emplace_back(i % 2 == 0 ? 12.0 : 0.5, 8.0);
  }
  mdp.fit(trace);
  const int sweeps = mdp.solve();
  EXPECT_GT(sweeps, 0);
  EXPECT_LT(sweeps, 1000);
  EXPECT_EQ(mdp.action_for(12.0, 8.0), MdpScheduler::Action::kWifiOnly);
  EXPECT_EQ(mdp.action_for(0.5, 8.0), MdpScheduler::Action::kWifiOnly);
}

TEST(MdpSchedulerTest, HypotheticalCheapCellularFlipsPolicy) {
  // Sanity check that the solver actually optimises: with a (fictional)
  // cellular radio cheaper than WiFi, cell-only wins where both are usable.
  energy::EnergyModel cheap = model();
  cheap.cell.beta_mw = 20.0;
  cheap.cell.alpha_mw_per_mbps = 1.0;
  MdpScheduler mdp(cheap, MdpScheduler::Config{});
  mdp.fit(static_trace(8.0, 8.0));
  mdp.solve();
  EXPECT_EQ(mdp.action_for(8.0, 8.0), MdpScheduler::Action::kCellOnly);
}

}  // namespace
}  // namespace emptcp::baseline
