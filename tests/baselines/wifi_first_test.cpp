#include "baselines/wifi_first.hpp"

#include <gtest/gtest.h>

#include "app/bulk_download.hpp"
#include "support/testnet.hpp"

namespace emptcp::baseline {
namespace {

using test::TestNet;

mptcp::MptcpConnection::Config config() {
  mptcp::MptcpConnection::Config cfg;
  cfg.classify_peer = [](net::Addr a) {
    if (a == test::kWifiAddr) return net::InterfaceType::kWifi;
    if (a == test::kCellAddr) return net::InterfaceType::kLte;
    return net::InterfaceType::kEthernet;
  };
  return cfg;
}

struct WifiFirstWorld {
  explicit WifiFirstWorld(std::uint64_t file_bytes,
                          std::uint64_t seed = 1)
      : net(seed, 8.0, 8.0), conn(net.sim, net.client, config()) {
    app::FileServer::Config scfg;
    scfg.port = test::kPort;
    scfg.resolver = [file_bytes](std::size_t, std::size_t req) {
      return req == 0 ? file_bytes : 0;
    };
    scfg.mptcp = config();
    // Fail subflows quickly when a path dies so the backup takes over.
    scfg.mptcp.subflow.max_data_rtos = 4;
    server = std::make_unique<app::FileServer>(net.sim, net.server,
                                               std::move(scfg));

    mptcp::MptcpConnection::Callbacks cb;
    cb.on_established = [this] { conn.send(200); };
    cb.on_data = [this](std::uint64_t n) { received += n; };
    cb.on_eof = [this] {
      eof = true;
      conn.shutdown_write();
    };
    conn.set_callbacks(std::move(cb));
  }

  void connect() {
    conn.connect(test::kWifiAddr, test::kCellAddr, test::kServerAddr,
                 test::kPort);
  }

  TestNet net;
  WifiFirstConnection conn;
  std::unique_ptr<app::FileServer> server;
  std::uint64_t received = 0;
  bool eof = false;
};

TEST(WifiFirstTest, ActivatesCellularAtEstablishmentButAsBackup) {
  WifiFirstWorld w(4'000'000);
  w.connect();
  w.net.sim.run_until(sim::seconds(2));

  // The paper's critique: the cellular radio is woken immediately (the
  // MP_JOIN handshake) even though it carries no data.
  mptcp::Subflow* lte = w.conn.mptcp().subflow_on(net::InterfaceType::kLte);
  ASSERT_NE(lte, nullptr);
  EXPECT_TRUE(lte->established());
  EXPECT_TRUE(lte->backup());
  EXPECT_GT(w.net.cell_if->tx_bytes(), 0u);  // handshake chatter
}

TEST(WifiFirstTest, AllPayloadTravelsOverWifiWhileAssociated) {
  WifiFirstWorld w(4'000'000);
  w.connect();
  w.net.sim.run_until(sim::seconds(60));
  EXPECT_TRUE(w.eof);
  EXPECT_EQ(w.received, 4'000'000u);
  EXPECT_LT(w.net.cell_if->rx_bytes(), 10'000u);  // options/handshake only
}

TEST(WifiFirstTest, DegradedButAssociatedWifiDoesNotFailOver) {
  // §4.6: "if WiFi provides too low bandwidth ... while it is still
  // associated, MPTCP with WiFi First degenerates into single-path TCP
  // over WiFi."
  WifiFirstWorld w(2'000'000);
  w.connect();
  w.net.sim.run_until(sim::seconds(2));
  w.net.wifi_down->set_rate(0.2);  // degraded, not broken
  w.net.wifi_up->set_rate(0.2);
  w.net.sim.run_until(sim::seconds(60));
  // LTE still idle: all (slow) progress is over WiFi.
  EXPECT_LT(w.net.cell_if->rx_bytes(), 10'000u);
}

TEST(WifiFirstTest, WifiBreakActivatesBackup) {
  WifiFirstWorld w(4'000'000);
  w.connect();
  w.net.sim.run_until(sim::seconds(2));
  // Hard association loss: the WiFi subflow dies after its RTO budget and
  // the backup subflow must finish the download.
  w.net.wifi_down->set_loss_prob(1.0);
  w.net.wifi_up->set_loss_prob(1.0);
  w.net.sim.run_until(sim::seconds(300));

  EXPECT_TRUE(w.eof);
  EXPECT_EQ(w.received, 4'000'000u);
  EXPECT_GT(w.net.cell_if->rx_bytes(), 1'000'000u);
}

}  // namespace
}  // namespace emptcp::baseline
