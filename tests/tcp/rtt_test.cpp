#include "tcp/rtt.hpp"

#include <gtest/gtest.h>

namespace emptcp::tcp {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(RttEstimatorTest, InitialRtoIsConfigured) {
  RttEstimator rtt;
  EXPECT_EQ(rtt.rto(), seconds(1));
  EXPECT_FALSE(rtt.has_sample());
}

TEST(RttEstimatorTest, FirstSampleInitialisesSrttAndRttvar) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  EXPECT_EQ(rtt.srtt(), milliseconds(100));
  EXPECT_EQ(rtt.rttvar(), milliseconds(50));
  // RTO = srtt + 4*rttvar = 300 ms.
  EXPECT_EQ(rtt.rto(), milliseconds(300));
}

TEST(RttEstimatorTest, SmoothingFollowsRfc6298) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  rtt.add_sample(milliseconds(200));
  // srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_EQ(rtt.srtt(), milliseconds(112) + sim::microseconds(500));
  // rttvar = 3/4*50 + 1/4*|100-200| = 62.5 ms
  EXPECT_EQ(rtt.rttvar(), milliseconds(62) + sim::microseconds(500));
}

TEST(RttEstimatorTest, StableSamplesShrinkRttvar) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.add_sample(milliseconds(80));
  EXPECT_EQ(rtt.srtt(), milliseconds(80));
  EXPECT_LT(rtt.rttvar(), milliseconds(2));
}

TEST(RttEstimatorTest, MinRtoEnforced) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.add_sample(milliseconds(5));
  EXPECT_GE(rtt.rto(), milliseconds(200));
}

TEST(RttEstimatorTest, BackoffDoublesAndClampsAtMax) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  const sim::Duration before = rtt.rto();
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), 2 * before);
  for (int i = 0; i < 20; ++i) rtt.backoff();
  EXPECT_EQ(rtt.rto(), seconds(60));
}

TEST(RttEstimatorTest, NegativeSamplesIgnored) {
  RttEstimator rtt;
  rtt.add_sample(-5);
  EXPECT_FALSE(rtt.has_sample());
}

TEST(RttEstimatorTest, ForceSrttOverridesWithoutTouchingRto) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  const sim::Duration rto = rtt.rto();
  rtt.force_srtt(0);  // eMPTCP resumed-subflow trick
  EXPECT_EQ(rtt.srtt(), 0);
  EXPECT_EQ(rtt.rto(), rto);
}

}  // namespace
}  // namespace emptcp::tcp
