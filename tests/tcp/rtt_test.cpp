#include "tcp/rtt.hpp"

#include <gtest/gtest.h>

namespace emptcp::tcp {
namespace {

using sim::milliseconds;
using sim::seconds;

TEST(RttEstimatorTest, InitialRtoIsConfigured) {
  RttEstimator rtt;
  EXPECT_EQ(rtt.rto(), seconds(1));
  EXPECT_FALSE(rtt.has_sample());
}

TEST(RttEstimatorTest, FirstSampleInitialisesSrttAndRttvar) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  EXPECT_EQ(rtt.srtt(), milliseconds(100));
  EXPECT_EQ(rtt.rttvar(), milliseconds(50));
  // RTO = srtt + 4*rttvar = 300 ms.
  EXPECT_EQ(rtt.rto(), milliseconds(300));
}

TEST(RttEstimatorTest, SmoothingFollowsRfc6298) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  rtt.add_sample(milliseconds(200));
  // srtt = 7/8*100 + 1/8*200 = 112.5 ms
  EXPECT_EQ(rtt.srtt(), milliseconds(112) + sim::microseconds(500));
  // rttvar = 3/4*50 + 1/4*|100-200| = 62.5 ms
  EXPECT_EQ(rtt.rttvar(), milliseconds(62) + sim::microseconds(500));
}

TEST(RttEstimatorTest, StableSamplesShrinkRttvar) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.add_sample(milliseconds(80));
  EXPECT_EQ(rtt.srtt(), milliseconds(80));
  EXPECT_LT(rtt.rttvar(), milliseconds(2));
}

TEST(RttEstimatorTest, MinRtoEnforced) {
  RttEstimator rtt;
  for (int i = 0; i < 50; ++i) rtt.add_sample(milliseconds(5));
  EXPECT_GE(rtt.rto(), milliseconds(200));
}

TEST(RttEstimatorTest, BackoffDoublesAndClampsAtMax) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  const sim::Duration before = rtt.rto();
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), 2 * before);
  for (int i = 0; i < 20; ++i) rtt.backoff();
  EXPECT_EQ(rtt.rto(), seconds(60));
}

TEST(RttEstimatorTest, RttvarUpdatesBeforeSrttPerRfc6298) {
  // RFC 6298 §2.3 orders the updates: RTTVAR from the *old* SRTT, then
  // SRTT. Samples 100 ms then 120 ms give err = |100-120| = 20 ms, so
  //   rttvar = 3/4*50 + 1/4*20   = 42.5 ms
  //   srtt   = 7/8*100 + 1/8*120 = 102.5 ms
  // Updating SRTT first would feed err = |102.5-120| = 17.5 ms and land on
  // rttvar = 41.875 ms instead.
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  rtt.add_sample(milliseconds(120));
  EXPECT_EQ(rtt.rttvar(), milliseconds(42) + sim::microseconds(500));
  EXPECT_EQ(rtt.srtt(), milliseconds(102) + sim::microseconds(500));
  // RTO = srtt + 4*rttvar = 102.5 + 170 = 272.5 ms.
  EXPECT_EQ(rtt.rto(), milliseconds(272) + sim::microseconds(500));
}

TEST(RttEstimatorTest, SampleAfterBackoffRecomputesRtoFromEstimates) {
  // Karn: the backed-off RTO holds only until the next valid sample, which
  // recomputes RTO from srtt/rttvar rather than the doubled value.
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  EXPECT_EQ(rtt.rto(), milliseconds(300));
  rtt.backoff();
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), milliseconds(1200));
  rtt.add_sample(milliseconds(100));
  // err = 0: rttvar decays to 37.5 ms; rto = 100 + 150 = 250 ms.
  EXPECT_EQ(rtt.rto(), milliseconds(250));
}

TEST(RttEstimatorTest, BackoffInteractsWithBothClamps) {
  RttEstimator::Config cfg;
  cfg.initial_rto = sim::seconds(1);
  cfg.min_rto = milliseconds(200);
  cfg.max_rto = milliseconds(500);
  RttEstimator rtt(cfg);

  // A tiny RTT pins the RTO at the floor...
  rtt.add_sample(milliseconds(5));
  EXPECT_EQ(rtt.rto(), milliseconds(200));
  // ...backoff doubles from the *clamped* value...
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), milliseconds(400));
  // ...and saturates at the ceiling instead of doubling past it.
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), milliseconds(500));
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), milliseconds(500));
  // A fresh sample returns the RTO to the estimator-driven floor.
  rtt.add_sample(milliseconds(5));
  EXPECT_EQ(rtt.rto(), milliseconds(200));
}

TEST(RttEstimatorTest, BackoffBeforeAnySampleDoublesInitialRto) {
  RttEstimator rtt;
  EXPECT_FALSE(rtt.has_sample());
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), seconds(2));
  rtt.backoff();
  EXPECT_EQ(rtt.rto(), seconds(4));
}

TEST(RttEstimatorTest, NegativeSamplesIgnored) {
  RttEstimator rtt;
  rtt.add_sample(-5);
  EXPECT_FALSE(rtt.has_sample());
}

TEST(RttEstimatorTest, ForceSrttOverridesWithoutTouchingRto) {
  RttEstimator rtt;
  rtt.add_sample(milliseconds(100));
  const sim::Duration rto = rtt.rto();
  rtt.force_srtt(0);  // eMPTCP resumed-subflow trick
  EXPECT_EQ(rtt.srtt(), 0);
  EXPECT_EQ(rtt.rto(), rto);
}

}  // namespace
}  // namespace emptcp::tcp
