// Quiescence predicate (TcpSocket::can_macro_step, DESIGN.md §13).
//
// The fast path may only advance a flow analytically while the predicate
// holds on every subflow socket, so its soundness property is the one the
// whole hybrid-fidelity mode stands on: can_macro_step() must be false
// whenever ANY transient trigger is pending — data in flight, loss
// recovery, an armed RTO, a FIN in either direction, a reassembly gap, or
// a not-yet-established state. The directed tests pin each trigger; the
// randomized sampling property checks the observable implication
// "quiescent sender has nothing unacknowledged" across lossy runs, and
// the mutation test proves that property has teeth by blinding the
// loss/in-flight terms (check::Mutation::kMacroQuiescenceBlind) and
// requiring the same probe to catch it.
#include <gtest/gtest.h>

#include <cstdint>
#include <functional>
#include <memory>

#include "check/mutation.hpp"
#include "support/testnet.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::tcp {
namespace {

using test::TestNet;

struct SocketPair {
  explicit SocketPair(TestNet& net, TcpSocket::Config cfg = {})
      : net_(net), client(net.sim, net.client, cfg) {
    listener = std::make_unique<TcpListener>(
        net.server, test::kPort, [this, &net, cfg](const net::Packet& syn) {
          server = TcpSocket::accept(net.sim, net.server, cfg, syn);
          if (on_accept) on_accept(*server);
        });
  }

  void connect() {
    client.connect(test::kWifiAddr, 5000, test::kServerAddr, test::kPort);
  }

  TestNet& net_;
  TcpSocket client;
  std::unique_ptr<TcpSocket> server;
  std::unique_ptr<TcpListener> listener;
  std::function<void(TcpSocket&)> on_accept;
};

TEST(MacroStepQuiescenceTest, FalseBeforeEstablishedTrueAfter) {
  TestNet net;
  SocketPair pair(net);
  EXPECT_FALSE(pair.client.can_macro_step());  // kClosed
  pair.connect();
  EXPECT_FALSE(pair.client.can_macro_step());  // kSynSent
  net.sim.run_until(sim::seconds(1));
  ASSERT_NE(pair.server, nullptr);
  // Established, idle, nothing pending on either side.
  EXPECT_TRUE(pair.client.can_macro_step());
  EXPECT_TRUE(pair.server->can_macro_step());
}

TEST(MacroStepQuiescenceTest, FalseWhileDataInFlight) {
  TestNet net;
  SocketPair pair(net);
  pair.on_accept = [](TcpSocket& srv) { srv.send_app_data(200'000); };
  pair.connect();
  bool sampled = false;
  // 150 ms in: handshake done, transfer mid-air on the ~20 ms path.
  net.sim.at(sim::milliseconds(150), [&] {
    sampled = true;
    ASSERT_NE(pair.server, nullptr);
    EXPECT_GT(pair.server->bytes_in_flight(), 0u);
    EXPECT_FALSE(pair.server->can_macro_step());
  });
  net.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(sampled);
  // Fully acknowledged and idle again: quiescent (no vacuous FALSE-forever).
  EXPECT_EQ(pair.server->app_bytes_acked(), 200'000u);
  EXPECT_TRUE(pair.server->can_macro_step());
}

TEST(MacroStepQuiescenceTest, FalseDuringLossRecovery) {
  TestNet net;
  SocketPair pair(net);
  pair.on_accept = [](TcpSocket& srv) { srv.send_app_data(400'000); };
  pair.connect();
  // Blackhole the data direction mid-transfer: the sender is left with
  // marked losses / an armed RTO, the receiver with a reassembly gap.
  net.sim.at(sim::milliseconds(200),
             [&] { net.wifi_down->set_loss_prob(1.0); });
  net.sim.at(sim::milliseconds(400),
             [&] { net.wifi_down->set_loss_prob(0.0); });
  bool sampled = false;
  net.sim.at(sim::milliseconds(450), [&] {
    sampled = true;
    ASSERT_NE(pair.server, nullptr);
    EXPECT_FALSE(pair.server->can_macro_step());
  });
  net.sim.run_until(sim::seconds(30));
  EXPECT_TRUE(sampled);
  EXPECT_GT(pair.server->retransmitted_segments(), 0u);
  // Recovery resolved, transfer complete: quiescent again.
  EXPECT_EQ(pair.server->app_bytes_acked(), 400'000u);
  EXPECT_TRUE(pair.server->can_macro_step());
}

TEST(MacroStepQuiescenceTest, FinIsTerminalOnBothSides) {
  TestNet net;
  SocketPair pair(net);
  pair.on_accept = [](TcpSocket& srv) {
    srv.send_app_data(10'000);
    srv.shutdown_write();
  };
  pair.connect();
  net.sim.run_until(sim::seconds(5));
  ASSERT_NE(pair.server, nullptr);
  // Sender side queued+sent a FIN; receiver side saw one. A closing flow
  // must never be advanced analytically, even though it is loss-free.
  EXPECT_FALSE(pair.server->can_macro_step());
  EXPECT_FALSE(pair.client.can_macro_step());
}

/// Shared body for the sampling property and its mutation-teeth twin:
/// runs a lossy 300 KB transfer, samples every 10 ms, and counts how
/// often a socket claimed quiescence while bytes were unacknowledged —
/// the observable no-transient implication of can_macro_step().
int quiescence_violations(std::uint64_t seed) {
  TestNet net(seed);
  SocketPair pair(net);
  pair.on_accept = [](TcpSocket& srv) { srv.send_app_data(300'000); };
  pair.connect();
  net.sim.at(sim::milliseconds(100),
             [&] { net.wifi_down->set_loss_prob(0.02); });
  int violations = 0;
  bool quiescent_seen = false;
  for (int ms = 50; ms < 20'000; ms += 10) {
    net.sim.at(sim::milliseconds(ms), [&] {
      for (TcpSocket* s : {&pair.client, pair.server.get()}) {
        if (s == nullptr || !s->can_macro_step()) continue;
        quiescent_seen = true;
        // A truthful predicate implies nothing is unacknowledged: any
        // in-flight byte under a true predicate is a soundness bug (the
        // exact class the blinded mutation injects).
        if (s->bytes_in_flight() != 0) ++violations;
      }
    });
  }
  net.sim.run_until(sim::seconds(25));
  EXPECT_TRUE(quiescent_seen) << "property vacuous: predicate never true";
  EXPECT_EQ(pair.server->app_bytes_acked(), 300'000u);
  return violations;
}

TEST(MacroStepQuiescenceTest, SamplingPropertyHoldsAcrossLossySeeds) {
  for (const std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    EXPECT_EQ(quiescence_violations(seed), 0) << "seed " << seed;
  }
}

// Teeth: blind the predicate's loss/in-flight terms (the injected fault
// emptcp-fuzz --mutate macro-quiescence-blind ships) and the very same
// probe must light up. A sampling property that cannot catch the blinded
// predicate would be decoration, not a gate.
TEST(MacroStepQuiescenceTest, SamplingPropertyCatchesBlindedPredicate) {
  check::ScopedMutation guard(check::Mutation::kMacroQuiescenceBlind);
  int total = 0;
  for (const std::uint64_t seed : {1ull, 2ull, 3ull}) {
    total += quiescence_violations(seed);
  }
  EXPECT_GT(total, 0) << "mutation not caught: property has no teeth";
}

}  // namespace
}  // namespace emptcp::tcp
