// Deeper TCP behaviour tests: SACK recovery, reordering tolerance,
// idle-restart (RFC 2861) at the socket level, and cellular promotion
// latency interaction — the mechanisms the eMPTCP results depend on.
#include <gtest/gtest.h>

#include "support/testnet.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::tcp {
namespace {

using test::TestNet;

struct Transfer {
  explicit Transfer(TestNet& net, std::uint64_t bytes,
                    TcpSocket::Config cfg = {})
      : net_(net), client(net.sim, net.client, cfg) {
    listener = std::make_unique<TcpListener>(
        net.server, test::kPort,
        [this, &net, cfg, bytes](const net::Packet& syn) {
          server = TcpSocket::accept(net.sim, net.server, cfg, syn);
          server->send_app_data(bytes);
          server->shutdown_write();
        });
    TcpSocket::Callbacks cb;
    cb.on_data = [this](std::uint64_t n) { received += n; };
    cb.on_eof = [this] {
      eof = true;
      eof_at = net_.sim.now();
      client.shutdown_write();
    };
    client.set_callbacks(std::move(cb));
  }

  void connect() {
    client.connect(test::kWifiAddr, 5100, test::kServerAddr, test::kPort);
  }

  TestNet& net_;
  TcpSocket client;
  std::unique_ptr<TcpSocket> server;
  std::unique_ptr<TcpListener> listener;
  std::uint64_t received = 0;
  bool eof = false;
  sim::Time eof_at = 0;
};

TEST(TcpRecoveryTest, BurstLossRecoversWithoutRtoStall) {
  // Kill a burst of packets mid-flow; SACK recovery should retransmit the
  // holes within a few RTTs, not one-per-RTT like plain NewReno.
  TestNet net(1, 8.0, 8.0);
  Transfer t(net, 4'000'000);
  t.connect();
  net.sim.run_until(sim::seconds(2));
  net.wifi_down->set_loss_prob(1.0);  // drop everything briefly
  net.sim.run_until(net.sim.now() + sim::milliseconds(120));
  net.wifi_down->set_loss_prob(0.0);
  net.sim.run_until(sim::seconds(60));
  EXPECT_TRUE(t.eof);
  EXPECT_EQ(t.received, 4'000'000u);
  // Recovery happened via fast retransmission, not only timeouts: the
  // total time stays close to the loss-free baseline.
  EXPECT_LT(sim::to_seconds(t.eof_at), 15.0);
}

TEST(TcpRecoveryTest, SteadyRandomLossSustainsReasonableGoodput) {
  TestNet net(1, 8.0, 8.0);
  net.wifi_down->set_loss_prob(0.01);
  Transfer t(net, 4'000'000);
  t.connect();
  net.sim.run_until(sim::seconds(120));
  ASSERT_TRUE(t.eof);
  const double mbps = 4e6 * 8.0 / 1e6 / sim::to_seconds(t.eof_at);
  EXPECT_GT(mbps, 2.0);  // Reno under 1% loss on a 20ms path
}

TEST(TcpRecoveryTest, SpuriousReorderingDoesNotCollapseWindow) {
  // Reordering via a parallel faster path is not modelled directly, but
  // the RACK-style guard must prevent marking fresh segments lost when
  // SACKs arrive for slightly later data. Approximate with a short loss
  // blip: retransmissions should stay bounded near the actual drop count.
  TestNet net(1, 8.0, 8.0);
  Transfer t(net, 6'000'000);
  t.connect();
  net.sim.run_until(sim::seconds(2));
  const std::uint64_t drops_before = net.wifi_down->dropped_loss() +
                                     net.wifi_down->dropped_queue();
  net.wifi_down->set_loss_prob(0.3);
  net.sim.run_until(net.sim.now() + sim::milliseconds(300));
  net.wifi_down->set_loss_prob(0.0);
  net.sim.run_until(sim::seconds(90));
  ASSERT_TRUE(t.eof);
  const std::uint64_t drops = net.wifi_down->dropped_loss() +
                              net.wifi_down->dropped_queue() - drops_before;
  // Allow duplicated recovery but not a retransmission storm.
  EXPECT_LT(t.server->retransmitted_segments(), drops * 3 + 50);
}

TEST(TcpRecoveryTest, IdleRestartResetsWindowUnlessDisabled) {
  // Server sends, goes idle, sends again: with cwnd validation the window
  // restarts from IW; with it disabled (eMPTCP's resumed subflows) it
  // stays large.
  for (const bool validation : {true, false}) {
    TestNet net(1, 10.0, 10.0);
    TcpSocket::Config cfg;
    std::unique_ptr<TcpSocket> server;
    TcpListener listener(net.server, test::kPort,
                         [&](const net::Packet& syn) {
                           server = TcpSocket::accept(net.sim, net.server,
                                                      cfg, syn);
                           server->send_app_data(2'000'000);
                         });
    TcpSocket client(net.sim, net.client, cfg);
    client.connect(test::kWifiAddr, 5200, test::kServerAddr, test::kPort);
    net.sim.run_until(sim::seconds(10));  // transfer done, cwnd grown
    ASSERT_NE(server, nullptr);
    server->set_cwnd_validation(validation);
    const std::uint64_t grown = server->cwnd();
    ASSERT_GT(grown, 60'000u);  // well above the ~14.5 KB initial window

    net.sim.run_until(sim::seconds(40));  // long idle (>> RTO)
    server->send_app_data(500'000);       // restart (reset applies here)
    if (validation) {
      EXPECT_LE(server->cwnd(), 15'000u) << "validation on";  // back to IW
    } else {
      EXPECT_GE(server->cwnd(), grown) << "validation off";
    }
  }
}

TEST(TcpRecoveryTest, PromotionDelaySlowsLteHandshakeOnly) {
  // With a radio hook attached, the first SYN over LTE is delayed by the
  // promotion; subsequent packets are not.
  TestNet net(1, 10.0, 10.0);

  class FixedPromo : public net::RadioHook {
   public:
    sim::Duration on_activity(sim::Time, std::uint32_t, bool is_tx) override {
      if (is_tx && !woken_) {
        woken_ = true;
        return sim::milliseconds(260);
      }
      return 0;
    }

   private:
    bool woken_ = false;
  };
  FixedPromo radio;
  net.cell_if->set_radio_hook(&radio);

  Transfer t(net, 100'000);
  t.client.connect(test::kCellAddr, 5300, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(10));
  ASSERT_TRUE(t.eof);
  // Handshake RTT includes the 260 ms promotion.
  EXPECT_GT(t.client.handshake_rtt(), sim::milliseconds(270));
  EXPECT_LT(t.client.handshake_rtt(), sim::milliseconds(320));
}

TEST(TcpRecoveryTest, RstFromAbortTearsDownPeer) {
  TestNet net;
  Transfer t(net, 10'000'000);
  t.connect();
  net.sim.run_until(sim::seconds(1));
  ASSERT_NE(t.server, nullptr);
  t.server->abort();  // sends RST
  net.sim.run_until(sim::seconds(5));
  EXPECT_EQ(t.client.state(), TcpState::kDone);
  EXPECT_TRUE(t.client.failed());
}

}  // namespace
}  // namespace emptcp::tcp
