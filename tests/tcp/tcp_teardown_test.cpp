// Teardown edge cases: simultaneous FIN, RST while fast recovery is in
// flight, and closing with a full retransmission buffer. All directly
// exercise the finish/cancel paths the fuzzer's quiescence checks lean on.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "support/testnet.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::tcp {
namespace {

using test::TestNet;

struct Pair {
  explicit Pair(TestNet& net, TcpSocket::Config cfg = {})
      : client(net.sim, net.client, cfg) {
    listener = std::make_unique<TcpListener>(
        net.server, test::kPort, [this, &net, cfg](const net::Packet& syn) {
          server = TcpSocket::accept(net.sim, net.server, cfg, syn);
          if (on_accept) on_accept(*server);
        });
  }

  void connect() {
    client.connect(test::kWifiAddr, 5000, test::kServerAddr, test::kPort);
  }

  TcpSocket client;
  std::unique_ptr<TcpSocket> server;
  std::unique_ptr<TcpListener> listener;
  std::function<void(TcpSocket&)> on_accept;
};

class SimultaneousFinTest : public ::testing::TestWithParam<double> {};

// Both ends issue FIN at the same instant (true simultaneous close, the
// FIN_WAIT/FIN_WAIT corner). Both must converge to DONE without failure,
// with every exchanged byte accounted for — also under loss, where one or
// both FINs need retransmitting.
TEST_P(SimultaneousFinTest, BothEndsReachDone) {
  const double loss = GetParam();
  TestNet net;
  net.wifi_up->set_loss_prob(loss);
  net.wifi_down->set_loss_prob(loss);
  Pair pair(net);
  std::uint64_t received = 0;
  pair.on_accept = [](TcpSocket& srv) { srv.send_app_data(50'000); };
  TcpSocket::Callbacks cb;
  cb.on_data = [&](std::uint64_t n) { received += n; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(2));
  ASSERT_NE(pair.server, nullptr);
  ASSERT_EQ(pair.client.state(), TcpState::kEstablished);

  net.sim.at(net.sim.now(), [&] {
    pair.client.shutdown_write();
    pair.server->shutdown_write();
  });
  net.sim.run_until(sim::seconds(240));

  EXPECT_EQ(pair.client.state(), TcpState::kDone);
  EXPECT_EQ(pair.server->state(), TcpState::kDone);
  EXPECT_FALSE(pair.client.failed());
  EXPECT_FALSE(pair.server->failed());
  EXPECT_EQ(received, 50'000u);
  EXPECT_EQ(pair.server->app_bytes_acked(), 50'000u);
}

INSTANTIATE_TEST_SUITE_P(LossGrid, SimultaneousFinTest,
                         ::testing::Values(0.0, 0.02),
                         [](const ::testing::TestParamInfo<double>& info) {
                           return info.param == 0.0 ? "clean" : "lossy";
                         });

// An RST arriving while the peer is mid-fast-recovery (retransmissions and
// marked holes in flight) must still tear the connection down cleanly:
// every timer cancelled, state DONE, the reset side marked failed.
TEST(TcpTeardownTest, RstDuringFastRecoveryTearsDownClient) {
  TestNet net;
  net.wifi_down->set_loss_prob(0.02);
  Pair pair(net);
  pair.on_accept = [](TcpSocket& srv) { srv.send_app_data(20'000'000); };
  pair.connect();

  // Advance until the sender has entered fast recovery at least once.
  trace::Counter& recoveries =
      net.sim.trace().metrics().counter("tcp.fast_recoveries");
  while (recoveries.value() == 0 && net.sim.now() < sim::seconds(30)) {
    net.sim.run_until(net.sim.now() + sim::milliseconds(100));
  }
  ASSERT_GE(recoveries.value(), 1u) << "loss never triggered fast recovery";
  ASSERT_NE(pair.server, nullptr);

  pair.server->abort();  // RST mid-recovery
  net.sim.run_until(net.sim.now() + sim::seconds(10));

  EXPECT_EQ(pair.client.state(), TcpState::kDone);
  EXPECT_TRUE(pair.client.failed());
  EXPECT_EQ(pair.server->state(), TcpState::kDone);
  // The queue must drain: nothing may keep rescheduling after both ends
  // are DONE (leaked RTO timers would fire here and throw on a send).
  net.sim.scheduler().run();
}

class RetxDrainTest
    : public ::testing::TestWithParam<std::tuple<double, std::uint64_t>> {};

// shutdown_write() with data still unacknowledged (much of it lost and
// sitting in the retransmission queue) — the FIN must not jump the queue:
// the receiver gets every byte, in order, before EOF, and both ends close.
TEST_P(RetxDrainTest, CloseDeliversQueuedRetransmissionsFirst) {
  const double loss = std::get<0>(GetParam());
  const std::uint64_t size = std::get<1>(GetParam());
  TestNet net;
  net.wifi_down->set_loss_prob(loss);
  Pair pair(net);
  std::uint64_t received = 0;
  bool eof = false;
  // Send and half-close immediately: the whole payload drains through the
  // retransmission machinery after the FIN is queued.
  pair.on_accept = [size](TcpSocket& srv) {
    srv.send_app_data(size);
    srv.shutdown_write();
  };
  TcpSocket::Callbacks cb;
  cb.on_data = [&](std::uint64_t n) { received += n; };
  cb.on_eof = [&] {
    EXPECT_EQ(received, size) << "EOF before all bytes were delivered";
    eof = true;
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(240));

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, size);
  EXPECT_EQ(pair.client.app_bytes_received(), size);
  EXPECT_EQ(pair.server->app_bytes_acked(), size);
  EXPECT_EQ(pair.client.state(), TcpState::kDone);
  EXPECT_EQ(pair.server->state(), TcpState::kDone);
  EXPECT_FALSE(pair.client.failed());
  // ~14 segments at 1% loss can legitimately sail through untouched; only
  // the combinations guaranteed to drop something must show retransmits.
  if (loss >= 0.05 || size >= 100'000) {
    EXPECT_GT(pair.server->retransmitted_segments(), 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    LossSizeGrid, RetxDrainTest,
    ::testing::Combine(::testing::Values(0.01, 0.05),
                       ::testing::Values(std::uint64_t{20'000},
                                         std::uint64_t{1'000'000})),
    [](const ::testing::TestParamInfo<std::tuple<double, std::uint64_t>>&
           info) {
      return std::string(std::get<0>(info.param) < 0.02 ? "light" : "heavy") +
             (std::get<1>(info.param) < 100'000 ? "Small" : "Large");
    });

}  // namespace
}  // namespace emptcp::tcp
