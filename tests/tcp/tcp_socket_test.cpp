#include "tcp/tcp_socket.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/testnet.hpp"

namespace emptcp::tcp {
namespace {

using test::TestNet;

/// Client/server socket pair over the test network's WiFi path.
struct SocketPair {
  explicit SocketPair(TestNet& net, TcpSocket::Config cfg = {})
      : net_(net), client(net.sim, net.client, cfg) {
    listener = std::make_unique<TcpListener>(
        net.server, test::kPort, [this, &net, cfg](const net::Packet& syn) {
          server = TcpSocket::accept(net.sim, net.server, cfg, syn);
          if (on_accept) on_accept(*server);
        });
  }

  void connect() {
    client.connect(test::kWifiAddr, 5000, test::kServerAddr, test::kPort);
  }

  TestNet& net_;
  TcpSocket client;
  std::unique_ptr<TcpSocket> server;
  std::unique_ptr<TcpListener> listener;
  std::function<void(TcpSocket&)> on_accept;
};

TEST(TcpSocketTest, ThreeWayHandshakeEstablishesBothEnds) {
  TestNet net;
  SocketPair pair(net);
  bool client_up = false;
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { client_up = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(1));

  EXPECT_TRUE(client_up);
  EXPECT_EQ(pair.client.state(), TcpState::kEstablished);
  ASSERT_NE(pair.server, nullptr);
  EXPECT_EQ(pair.server->state(), TcpState::kEstablished);
}

TEST(TcpSocketTest, HandshakeRttMeasured) {
  TestNet net;
  SocketPair pair(net);
  pair.connect();
  net.sim.run_until(sim::seconds(1));
  // Path RTT is ~20 ms propagation plus transmission time.
  EXPECT_GT(pair.client.handshake_rtt(), sim::milliseconds(19));
  EXPECT_LT(pair.client.handshake_rtt(), sim::milliseconds(30));
  EXPECT_GT(pair.server->handshake_rtt(), sim::milliseconds(19));
}

TEST(TcpSocketTest, TransfersCountedBytes) {
  TestNet net;
  SocketPair pair(net);
  std::uint64_t received = 0;
  bool eof = false;
  pair.on_accept = [](TcpSocket& srv) {
    srv.send_app_data(100'000);
    srv.shutdown_write();
  };
  TcpSocket::Callbacks cb;
  cb.on_data = [&](std::uint64_t n) { received += n; };
  cb.on_eof = [&] { eof = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(10));

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, 100'000u);
  EXPECT_EQ(pair.client.app_bytes_received(), 100'000u);
  EXPECT_EQ(pair.server->app_bytes_acked(), 100'000u);
}

TEST(TcpSocketTest, CleanCloseReachesDoneOnBothEnds) {
  TestNet net;
  SocketPair pair(net);
  bool client_closed = false;
  pair.on_accept = [](TcpSocket& srv) {
    srv.send_app_data(10'000);
    srv.shutdown_write();
  };
  TcpSocket::Callbacks cb;
  cb.on_eof = [&] { pair.client.shutdown_write(); };
  cb.on_closed = [&] { client_closed = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(10));

  EXPECT_TRUE(client_closed);
  EXPECT_EQ(pair.client.state(), TcpState::kDone);
  EXPECT_EQ(pair.server->state(), TcpState::kDone);
  EXPECT_FALSE(pair.client.failed());
}

TEST(TcpSocketTest, SurvivesRandomLoss) {
  TestNet net;
  net.wifi_down->set_loss_prob(0.03);
  net.wifi_up->set_loss_prob(0.01);
  SocketPair pair(net);
  std::uint64_t received = 0;
  bool eof = false;
  pair.on_accept = [](TcpSocket& srv) {
    srv.send_app_data(2'000'000);
    srv.shutdown_write();
  };
  TcpSocket::Callbacks cb;
  cb.on_data = [&](std::uint64_t n) { received += n; };
  cb.on_eof = [&] { eof = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(120));

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, 2'000'000u);
  EXPECT_GT(pair.server->retransmitted_segments(), 0u);
}

TEST(TcpSocketTest, ThroughputApproachesLinkRate) {
  TestNet net(1, /*wifi=*/8.0, /*cell=*/8.0);
  SocketPair pair(net);
  const std::uint64_t size = 8'000'000;  // 8 MB
  bool eof = false;
  sim::Time done_at = 0;
  pair.on_accept = [size](TcpSocket& srv) {
    srv.send_app_data(size);
    srv.shutdown_write();
  };
  TcpSocket::Callbacks cb;
  cb.on_eof = [&] {
    eof = true;
    done_at = net.sim.now();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(120));

  ASSERT_TRUE(eof);
  const double mbps = static_cast<double>(size) * 8.0 / 1e6 /
                      sim::to_seconds(done_at);
  EXPECT_GT(mbps, 4.5);  // >55 % of the 8 Mbps bottleneck
}

TEST(TcpSocketTest, SynLossRetriesAndConnects) {
  TestNet net;
  net.wifi_up->set_loss_prob(1.0);  // drop the first SYN
  SocketPair pair(net);
  bool connected = false;
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { connected = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::milliseconds(500));
  net.wifi_up->set_loss_prob(0.0);  // heal before the retry
  net.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(connected);
}

TEST(TcpSocketTest, ConnectFailsAfterMaxSynRetries) {
  TestNet net;
  net.wifi_up->set_loss_prob(1.0);
  TcpSocket::Config cfg;
  cfg.max_syn_retries = 2;
  SocketPair pair(net, cfg);
  bool closed = false;
  TcpSocket::Callbacks cb;
  cb.on_closed = [&] { closed = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(60));
  EXPECT_TRUE(closed);
  EXPECT_TRUE(pair.client.failed());
}

TEST(TcpSocketTest, DeadPathFailsAfterDataRtoLimit) {
  TestNet net;
  TcpSocket::Config cfg;
  cfg.max_data_rtos = 3;
  SocketPair pair(net, cfg);
  bool server_failed = false;
  pair.on_accept = [&](TcpSocket& srv) {
    srv.send_app_data(1'000'000);
    TcpSocket::Callbacks scb;
    scb.on_closed = [&] { server_failed = true; };
    srv.set_callbacks(std::move(scb));
  };
  pair.connect();
  net.sim.run_until(sim::milliseconds(500));
  // Kill the path mid-transfer.
  net.wifi_down->set_loss_prob(1.0);
  net.wifi_up->set_loss_prob(1.0);
  net.sim.run_until(sim::seconds(120));
  EXPECT_TRUE(server_failed);
  EXPECT_TRUE(pair.server->failed());
}

TEST(TcpSocketTest, BidirectionalTransfer) {
  TestNet net;
  SocketPair pair(net);
  std::uint64_t server_got = 0;
  pair.on_accept = [&](TcpSocket& srv) {
    TcpSocket::Callbacks scb;
    scb.on_data = [&](std::uint64_t n) { server_got += n; };
    srv.set_callbacks(std::move(scb));
    srv.send_app_data(50'000);
  };
  std::uint64_t client_got = 0;
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { pair.client.send_app_data(30'000); };
  cb.on_data = [&](std::uint64_t n) { client_got += n; };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(10));
  EXPECT_EQ(server_got, 30'000u);
  EXPECT_EQ(client_got, 50'000u);
}

TEST(TcpSocketTest, MpPrioTravelsOnPureAck) {
  TestNet net;
  SocketPair pair(net);
  bool saw_prio = false;
  pair.on_accept = [&](TcpSocket& srv) {
    TcpSocket::Callbacks scb;
    scb.on_packet = [&](const net::Packet& p) {
      if (p.mp_prio && p.mp_prio->backup) saw_prio = true;
    };
    srv.set_callbacks(std::move(scb));
  };
  TcpSocket::Callbacks cb;
  cb.on_connected = [&] { pair.client.send_mp_prio(true); };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(2));
  EXPECT_TRUE(saw_prio);
}

TEST(TcpSocketTest, DataAckCarriedOnAcks) {
  TestNet net;
  SocketPair pair(net);
  std::uint64_t seen_data_ack = 0;
  pair.on_accept = [&](TcpSocket& srv) {
    srv.send_app_data(10'000);
    TcpSocket::Callbacks scb;
    scb.on_packet = [&](const net::Packet& p) {
      if (p.data_ack) seen_data_ack = std::max(seen_data_ack, *p.data_ack);
    };
    srv.set_callbacks(std::move(scb));
  };
  TcpSocket::Callbacks cb;
  cb.on_data = [&](std::uint64_t) {
    pair.client.set_data_ack(777);  // meta-socket would set this
  };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(5));
  EXPECT_EQ(seen_data_ack, 777u);
}

TEST(TcpSocketTest, SegmentSourceDrivesPayloadWithDss) {
  TestNet net;
  SocketPair pair(net);
  std::uint64_t delivered_data_level = 0;
  pair.on_accept = [&](TcpSocket& srv) {
    // Hand out 10 chunks of 1000 bytes with DSS mappings.
    auto remaining = std::make_shared<std::uint64_t>(10'000);
    auto next_seq = std::make_shared<std::uint64_t>(1);
    srv.set_segment_source(
        [remaining, next_seq](std::uint32_t max_len)
            -> std::optional<TcpSocket::Chunk> {
          if (*remaining == 0) return std::nullopt;
          TcpSocket::Chunk c;
          c.len = static_cast<std::uint32_t>(
              std::min<std::uint64_t>({*remaining, max_len, 1000}));
          c.dss = net::DssMapping{*next_seq, 0, c.len};
          *next_seq += c.len;
          *remaining -= c.len;
          return c;
        });
    srv.notify_data_available();
  };
  TcpSocket::Callbacks cb;
  cb.on_packet = [&](const net::Packet& p) {
    if (p.dss) delivered_data_level += p.dss->length;
  };
  pair.client.set_callbacks(std::move(cb));
  pair.connect();
  net.sim.run_until(sim::seconds(5));
  EXPECT_EQ(delivered_data_level, 10'000u);
}

}  // namespace
}  // namespace emptcp::tcp
