#include "tcp/cc.hpp"

#include <gtest/gtest.h>

namespace emptcp::tcp {
namespace {

CongestionControl::Config config() {
  CongestionControl::Config cfg;
  cfg.mss = 1000;
  cfg.initial_window_segments = 10;
  return cfg;
}

TEST(CongestionControlTest, StartsAtInitialWindowInSlowStart) {
  RenoCongestionControl cc(config());
  EXPECT_EQ(cc.cwnd(), 10'000u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(CongestionControlTest, SlowStartDoublesPerWindow) {
  RenoCongestionControl cc(config());
  // Acking a full window in MSS-sized chunks roughly doubles cwnd.
  for (int i = 0; i < 10; ++i) cc.on_ack(1000);
  EXPECT_EQ(cc.cwnd(), 20'000u);
}

TEST(CongestionControlTest, LossEventHalvesWindow) {
  RenoCongestionControl cc(config());
  cc.on_loss_event();
  EXPECT_EQ(cc.cwnd(), 5'000u);
  EXPECT_EQ(cc.ssthresh(), 5'000u);
  EXPECT_FALSE(cc.in_slow_start());
}

TEST(CongestionControlTest, CongestionAvoidanceGrowsLinearly) {
  RenoCongestionControl cc(config());
  cc.on_loss_event();  // cwnd = ssthresh = 5000 -> CA
  const std::uint64_t start = cc.cwnd();
  // One full window of acks should add about one MSS.
  std::uint64_t acked = 0;
  while (acked < start) {
    cc.on_ack(1000);
    acked += 1000;
  }
  EXPECT_NEAR(static_cast<double>(cc.cwnd() - start), 1000.0, 150.0);
}

TEST(CongestionControlTest, TimeoutCollapsesToOneMss) {
  RenoCongestionControl cc(config());
  cc.on_timeout();
  EXPECT_EQ(cc.cwnd(), 1000u);
  EXPECT_EQ(cc.ssthresh(), 5'000u);
  EXPECT_TRUE(cc.in_slow_start());
}

TEST(CongestionControlTest, LossFloorsAtTwoMss) {
  RenoCongestionControl cc(config());
  cc.on_timeout();
  cc.on_loss_event();
  cc.on_loss_event();
  EXPECT_GE(cc.cwnd(), 2000u);
  EXPECT_GE(cc.ssthresh(), 2000u);
}

TEST(CongestionControlTest, ZeroAckIsNoop) {
  RenoCongestionControl cc(config());
  const std::uint64_t before = cc.cwnd();
  cc.on_ack(0);
  EXPECT_EQ(cc.cwnd(), before);
}

TEST(CongestionControlTest, IdleRestartResetsToInitialWindowWhenEnabled) {
  RenoCongestionControl cc(config());
  for (int i = 0; i < 30; ++i) cc.on_ack(1000);
  const std::uint64_t grown = cc.cwnd();
  ASSERT_GT(grown, cc.initial_cwnd());

  // Idle shorter than RTO: no reset.
  cc.on_idle_restart(sim::milliseconds(100), sim::milliseconds(200));
  EXPECT_EQ(cc.cwnd(), grown);

  // Idle longer than RTO: RFC 2861 reset.
  cc.on_idle_restart(sim::seconds(5), sim::milliseconds(200));
  EXPECT_EQ(cc.cwnd(), cc.initial_cwnd());
}

TEST(CongestionControlTest, IdleRestartDisabledKeepsWindow) {
  // Paper §3.6: eMPTCP disables the reset on resumed subflows so they can
  // ramp immediately.
  RenoCongestionControl cc(config());
  for (int i = 0; i < 30; ++i) cc.on_ack(1000);
  const std::uint64_t grown = cc.cwnd();
  cc.set_cwnd_validation(false);
  cc.on_idle_restart(sim::seconds(60), sim::milliseconds(200));
  EXPECT_EQ(cc.cwnd(), grown);
}

TEST(CongestionControlTest, MaxCwndCapRespected) {
  auto cfg = config();
  cfg.max_cwnd_bytes = 15'000;
  RenoCongestionControl cc(cfg);
  for (int i = 0; i < 1000; ++i) cc.on_ack(1000);
  EXPECT_LE(cc.cwnd(), 15'000u);
}

}  // namespace
}  // namespace emptcp::tcp
