#include "tcp/buffers.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <random>
#include <vector>

namespace emptcp::tcp {
namespace {

TEST(IntervalReassemblyTest, InOrderAdvancesCumulative) {
  IntervalReassembly r(1);
  EXPECT_EQ(r.insert(1, 100), 100u);
  EXPECT_EQ(r.cumulative(), 101u);
  EXPECT_EQ(r.insert(101, 50), 50u);
  EXPECT_EQ(r.cumulative(), 151u);
  EXPECT_FALSE(r.has_gaps());
}

TEST(IntervalReassemblyTest, OutOfOrderBuffersThenDrains) {
  IntervalReassembly r(1);
  EXPECT_EQ(r.insert(101, 100), 0u);  // gap at [1,101)
  EXPECT_TRUE(r.has_gaps());
  EXPECT_EQ(r.buffered_bytes(), 100u);
  EXPECT_EQ(r.insert(1, 100), 200u);  // fills the gap, drains the buffer
  EXPECT_EQ(r.cumulative(), 201u);
  EXPECT_FALSE(r.has_gaps());
}

TEST(IntervalReassemblyTest, DuplicatesCountZero) {
  IntervalReassembly r(1);
  r.insert(1, 100);
  EXPECT_EQ(r.insert(1, 100), 0u);
  EXPECT_EQ(r.insert(50, 51), 0u);
  EXPECT_EQ(r.cumulative(), 101u);
}

TEST(IntervalReassemblyTest, PartialOverlapCountsOnlyNewBytes) {
  IntervalReassembly r(1);
  r.insert(1, 100);
  EXPECT_EQ(r.insert(51, 100), 50u);  // [101,151) is new
  EXPECT_EQ(r.cumulative(), 151u);
}

TEST(IntervalReassemblyTest, MergesAdjacentOutOfOrderIntervals) {
  IntervalReassembly r(1);
  r.insert(101, 50);
  r.insert(151, 50);  // adjacent: one interval [101,201)
  EXPECT_EQ(r.gap_segments(), 1u);
  r.insert(301, 50);  // disjoint: second interval
  EXPECT_EQ(r.gap_segments(), 2u);
  r.insert(201, 100);  // bridges [201,301): all merge
  EXPECT_EQ(r.gap_segments(), 1u);
  EXPECT_EQ(r.buffered_bytes(), 250u);
}

TEST(IntervalReassemblyTest, OverlappingSpanMergesEverything) {
  IntervalReassembly r(0);
  r.insert(10, 10);
  r.insert(30, 10);
  r.insert(50, 10);
  EXPECT_EQ(r.gap_segments(), 3u);
  EXPECT_EQ(r.insert(5, 60), 0u);  // covers all three
  EXPECT_EQ(r.gap_segments(), 1u);
  EXPECT_EQ(r.buffered_bytes(), 60u);
  EXPECT_EQ(r.insert(0, 5), 65u);  // completes from the cumulative point
  EXPECT_EQ(r.cumulative(), 65u);
}

TEST(IntervalReassemblyTest, ZeroLengthInsertIsNoop) {
  IntervalReassembly r(1);
  EXPECT_EQ(r.insert(1, 0), 0u);
  EXPECT_EQ(r.cumulative(), 1u);
}

TEST(IntervalReassemblyTest, StaleSegmentBelowCumulativeIgnored) {
  IntervalReassembly r(1);
  r.insert(1, 1000);
  EXPECT_EQ(r.insert(500, 100), 0u);
  EXPECT_EQ(r.cumulative(), 1001u);
  EXPECT_FALSE(r.has_gaps());
}

TEST(IntervalReassemblyTest, SegmentStraddlingCumulative) {
  IntervalReassembly r(1);
  r.insert(1, 100);
  // Segment [51, 201): only [101, 201) is new.
  EXPECT_EQ(r.insert(51, 150), 100u);
  EXPECT_EQ(r.cumulative(), 201u);
}

TEST(IntervalReassemblyTest, IntervalsExposedForSack) {
  IntervalReassembly r(1);
  r.insert(101, 50);
  r.insert(301, 20);
  const auto& iv = r.intervals();
  ASSERT_EQ(iv.size(), 2u);
  EXPECT_EQ(iv.begin()->first, 101u);
  EXPECT_EQ(iv.begin()->second, 151u);
  EXPECT_EQ(std::next(iv.begin())->first, 301u);
  EXPECT_EQ(std::next(iv.begin())->second, 321u);
}

TEST(IntervalReassemblyTest, LargeRandomisedSequenceReassembles) {
  // Property test: inserting a permutation of 1000 segments always ends
  // with the same cumulative point and no gaps.
  IntervalReassembly r(0);
  std::vector<std::uint64_t> offsets;
  for (std::uint64_t i = 0; i < 1000; ++i) offsets.push_back(i * 100);
  std::mt19937 gen(7);
  std::shuffle(offsets.begin(), offsets.end(), gen);
  std::uint64_t total = 0;
  for (std::uint64_t off : offsets) total += r.insert(off, 100);
  EXPECT_EQ(total, 100'000u);
  EXPECT_EQ(r.cumulative(), 100'000u);
  EXPECT_FALSE(r.has_gaps());
  EXPECT_EQ(r.buffered_bytes(), 0u);
}

}  // namespace
}  // namespace emptcp::tcp
