# Tier-1 smoke gate for emptcp-fuzz: the CLI contract, a clean fixed-seed
# batch whose digest is byte-identical across worker counts, and both
# mutation-testing catches (an injected bug must fail the run AND leave a
# replayable repro file). Invoked by ctest with
# -DFUZZ_TOOL=<path to emptcp-fuzz> -DWORK_DIR=<scratch dir>.
if(NOT DEFINED FUZZ_TOOL)
  message(FATAL_ERROR "fuzz_smoke_gate: missing -DFUZZ_TOOL")
endif()
if(NOT DEFINED WORK_DIR)
  message(FATAL_ERROR "fuzz_smoke_gate: missing -DWORK_DIR")
endif()

file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

function(expect_run rc_expected out_match err_match)
  execute_process(
    COMMAND ${FUZZ_TOOL} ${ARGN}
    WORKING_DIRECTORY ${WORK_DIR}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(NOT rc EQUAL ${rc_expected})
    message(FATAL_ERROR
            "fuzz_smoke_gate: emptcp-fuzz ${ARGN} exited ${rc}, "
            "expected ${rc_expected}\nstdout: ${out}\nstderr: ${err}")
  endif()
  if(NOT out_match STREQUAL "" AND NOT out MATCHES "${out_match}")
    message(FATAL_ERROR
            "fuzz_smoke_gate: emptcp-fuzz ${ARGN}: stdout missing "
            "\"${out_match}\": ${out}")
  endif()
  if(NOT err_match STREQUAL "" AND NOT err MATCHES "${err_match}")
    message(FATAL_ERROR
            "fuzz_smoke_gate: emptcp-fuzz ${ARGN}: stderr missing "
            "\"${err_match}\": ${err}")
  endif()
endfunction()

# CLI contract: --help exits 0 with usage on stdout; malformed invocations
# exit 2 with usage on stderr.
expect_run(0 "usage: emptcp-fuzz" "" --help)
expect_run(2 "" "unknown option: --bogus" --bogus)
expect_run(2 "" "usage: emptcp-fuzz" --seeds)
expect_run(2 "" "--seeds needs a positive count" --seeds banana)
expect_run(2 "" "unknown --mutate name" --mutate frobnicate)

# Clean fixed-seed batch, parallel: exits 0, digest on stdout.
expect_run(0 "fnv1a64:" ""
           --seeds 24 --base-seed 1 --recheck 4 --jobs 4
           --digest-out ${WORK_DIR}/digest_par.txt)

# Same batch sequential: the digest file must be byte-identical —
# the determinism contract across EMPTCP_JOBS.
expect_run(0 "fnv1a64:" ""
           --seeds 24 --base-seed 1 --recheck 4 --jobs 1
           --digest-out ${WORK_DIR}/digest_seq.txt)
file(READ ${WORK_DIR}/digest_par.txt digest_par)
file(READ ${WORK_DIR}/digest_seq.txt digest_seq)
if(NOT digest_par STREQUAL digest_seq)
  message(FATAL_ERROR
          "fuzz_smoke_gate: batch digest differs across worker counts: "
          "jobs=4 -> ${digest_par}, jobs=1 -> ${digest_seq}")
endif()

# Mutation testing: each injected bug must make the batch fail (exit 1)
# and dump a replayable repro for a known catch seed.
expect_run(1 "" "tcp.exactly_once_delivery"
           --mutate reassembly-dup-deliver --seeds 10 --base-seed 1
           --out ${WORK_DIR}/mut_reassembly)
if(NOT EXISTS ${WORK_DIR}/mut_reassembly/repro-5.txt)
  message(FATAL_ERROR
          "fuzz_smoke_gate: reassembly mutation left no repro-5.txt")
endif()
expect_run(1 "" "sched.backup_suppressed"
           --mutate scheduler-ignore-backup --seeds 10 --base-seed 1
           --out ${WORK_DIR}/mut_sched)
if(NOT EXISTS ${WORK_DIR}/mut_sched/repro-10.txt)
  message(FATAL_ERROR
          "fuzz_smoke_gate: scheduler mutation left no repro-10.txt")
endif()

# The repro file replays to the same violation (exit 1, same invariant).
expect_run(1 "" "tcp.exactly_once_delivery"
           --replay ${WORK_DIR}/mut_reassembly/repro-5.txt)

message(STATUS "fuzz_smoke_gate: all fuzz smoke checks passed")
