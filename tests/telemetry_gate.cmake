# Tier-1 telemetry gate: run the committed sharded campaign spec twice —
# once plain, once with the span profiler on (EMPTCP_PERF_DIR), a live
# heartbeat and EMPTCP_JOBS=2 — and enforce the observability contract
# end to end through the CLIs:
#   1. wall-clock telemetry never changes a deterministic artifact byte
#      (the campaign directories differ only by heartbeat.jsonl);
#   2. the heartbeat JSONL ends with a cells_done == cells_total record;
#   3. the exported Chrome trace validates structurally and the perf
#      sidecars render through `emptcp-report perf`;
#   4. `emptcp-report perf` honours the exit-code contract (2 on usage
#      errors and missing directories).
# Invoked by ctest with:
#   -DCAMPAIGN_TOOL=<path to emptcp-campaign>
#   -DREPORT_TOOL=<path to emptcp-report>
#   -DSPEC=<examples/campaigns/sharded_smoke.spec>
#   -DOUT_DIR=<scratch directory; _plain/_telem/_perf suffixes are added>
foreach(var CAMPAIGN_TOOL REPORT_TOOL SPEC OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "telemetry_gate: missing -D${var}")
  endif()
endforeach()

set(plain_dir ${OUT_DIR}_plain)
set(telem_dir ${OUT_DIR}_telem)
set(perf_dir ${OUT_DIR}_perf)
file(REMOVE_RECURSE ${plain_dir} ${telem_dir} ${perf_dir})

# Baseline: telemetry off, no heartbeat.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env --unset=EMPTCP_PERF_DIR
          ${CAMPAIGN_TOOL} --out ${plain_dir} ${SPEC}
  RESULT_VARIABLE rc
  ERROR_VARIABLE plain_log)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry_gate: plain run failed (${rc}): ${plain_log}")
endif()

# Instrumented: profiler on, heartbeat on, parallel workers.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env EMPTCP_PERF_DIR=${perf_dir} EMPTCP_JOBS=2
          ${CAMPAIGN_TOOL} --out ${telem_dir} --heartbeat 0.01 ${SPEC}
  RESULT_VARIABLE rc
  ERROR_VARIABLE telem_log)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry_gate: instrumented run failed (${rc}): "
                      "${telem_log}")
endif()
if(NOT telem_log MATCHES "telemetry on")
  message(FATAL_ERROR "telemetry_gate: EMPTCP_PERF_DIR did not switch the "
                      "profiler on: ${telem_log}")
endif()

# 1. Byte-identity: every deterministic artifact matches; the heartbeat
# sidecar is the only file the instrumented run may add.
file(GLOB plain_files RELATIVE ${plain_dir} ${plain_dir}/*)
file(GLOB telem_files RELATIVE ${telem_dir} ${telem_dir}/*)
list(REMOVE_ITEM telem_files heartbeat.jsonl)
if(NOT plain_files STREQUAL telem_files)
  message(FATAL_ERROR "telemetry_gate: artifact sets differ beyond the "
                      "heartbeat: [${plain_files}] vs [${telem_files}]")
endif()
foreach(name ${plain_files})
  file(READ ${plain_dir}/${name} plain_bytes)
  file(READ ${telem_dir}/${name} telem_bytes)
  if(NOT plain_bytes STREQUAL telem_bytes)
    message(FATAL_ERROR "telemetry_gate: ${name} differs with telemetry on — "
                        "wall-clock data leaked into a deterministic artifact")
  endif()
endforeach()

# 2. Heartbeat: present, and its final record reports completion.
if(NOT EXISTS ${telem_dir}/heartbeat.jsonl)
  message(FATAL_ERROR "telemetry_gate: --heartbeat produced no heartbeat.jsonl")
endif()
file(STRINGS ${telem_dir}/heartbeat.jsonl hb_lines)
list(POP_BACK hb_lines hb_last)
if(NOT hb_last MATCHES "\"schema\": \"emptcp-heartbeat-v1\"")
  message(FATAL_ERROR "telemetry_gate: heartbeat line lacks the schema tag: "
                      "${hb_last}")
endif()
if(NOT hb_last MATCHES "\"cells_total\": 1, \"cells_done\": 1")
  message(FATAL_ERROR "telemetry_gate: final heartbeat does not report "
                      "done == total: ${hb_last}")
endif()

# 3. Perf artifacts: the Chrome trace validates and the sidecars render.
set(trace_json ${perf_dir}/campaign-sharded-smoke.trace.json)
if(NOT EXISTS ${trace_json})
  message(FATAL_ERROR "telemetry_gate: missing campaign trace ${trace_json}")
endif()
execute_process(
  COMMAND ${REPORT_TOOL} perf ${perf_dir} --trace-json ${trace_json}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE perf_report
  ERROR_VARIABLE perf_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "telemetry_gate: emptcp-report perf failed (${rc}): "
                      "${perf_err}")
endif()
if(NOT perf_report MATCHES "chrome trace OK")
  message(FATAL_ERROR "telemetry_gate: trace validation line missing from:\n"
                      "${perf_report}")
endif()
if(NOT perf_report MATCHES "== perf: campaign sharded-smoke ==")
  message(FATAL_ERROR "telemetry_gate: campaign perf doc not rendered:\n"
                      "${perf_report}")
endif()
if(NOT perf_report MATCHES "events/epoch")
  message(FATAL_ERROR "telemetry_gate: epoch distributions missing from:\n"
                      "${perf_report}")
endif()

# 4. Exit-code contract: usage errors and missing inputs exit 2.
execute_process(COMMAND ${REPORT_TOOL} perf
                RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_VARIABLE usage_err)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "telemetry_gate: bare 'perf' should exit 2, got ${rc}")
endif()
if(NOT usage_err MATCHES "usage")
  message(FATAL_ERROR "telemetry_gate: usage text missing on stderr: "
                      "${usage_err}")
endif()
execute_process(COMMAND ${REPORT_TOOL} perf ${OUT_DIR}_no_such_dir
                RESULT_VARIABLE rc
                OUTPUT_QUIET ERROR_QUIET)
if(NOT rc EQUAL 2)
  message(FATAL_ERROR "telemetry_gate: missing dir should exit 2, got ${rc}")
endif()

message(STATUS "telemetry_gate: byte-identical artifacts, complete "
               "heartbeat, valid Chrome trace, perf report rendered")
