// The parallel replication runner's contract: results come back in a
// [config][seed] matrix identical to running the same loop sequentially,
// regardless of worker count or completion order; exceptions propagate.
#include "runtime/replication.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <stdexcept>
#include <thread>

#include "app/scenario.hpp"
#include "runtime/thread_pool.hpp"

namespace emptcp::runtime {
namespace {

TEST(SeedRangeTest, BuildsConsecutiveSeeds) {
  const std::vector<std::uint64_t> seeds = seed_range(40, 4);
  EXPECT_EQ(seeds, (std::vector<std::uint64_t>{40, 41, 42, 43}));
  EXPECT_TRUE(seed_range(7, 0).empty());
}

TEST(ThreadPoolTest, RunsAllSubmittedTasks) {
  std::atomic<int> count{0};
  ThreadPool pool(4);
  for (int i = 0; i < 100; ++i) {
    pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  }
  pool.wait_idle();
  EXPECT_EQ(count.load(), 100);
  // The pool stays usable after wait_idle.
  pool.submit([&count] { count.fetch_add(1, std::memory_order_relaxed); });
  pool.wait_idle();
  EXPECT_EQ(count.load(), 101);
}

TEST(ReplicationTest, MatrixIsInSubmissionOrder) {
  // Later cells sleep less, so completion order is roughly reversed; the
  // result matrix must still be [config][seed].
  const std::vector<int> configs = {100, 200, 300};
  const std::vector<std::uint64_t> seeds = {1, 2, 3, 4};
  const auto matrix = run_replications(
      configs, seeds,
      [](const int& c, std::uint64_t s) {
        std::this_thread::sleep_for(
            std::chrono::microseconds((400 - c) + (5 - s) * 10));
        return c + static_cast<int>(s);
      },
      4);
  ASSERT_EQ(matrix.size(), configs.size());
  for (std::size_t i = 0; i < configs.size(); ++i) {
    ASSERT_EQ(matrix[i].size(), seeds.size());
    for (std::size_t j = 0; j < seeds.size(); ++j) {
      EXPECT_EQ(matrix[i][j],
                configs[i] + static_cast<int>(seeds[j]));
    }
  }
}

TEST(ReplicationTest, SingleConfigOverloadReturnsFlatRow) {
  const std::vector<int> row =
      run_replications(7, seed_range(0, 5),
                       [](const int& c, std::uint64_t s) {
                         return c * static_cast<int>(s);
                       });
  EXPECT_EQ(row, (std::vector<int>{0, 7, 14, 21, 28}));
}

TEST(ReplicationTest, ExceptionsPropagateAfterAllRunsFinish) {
  std::atomic<int> completed{0};
  EXPECT_THROW(
      run_replications(
          std::vector<int>{1, 2}, seed_range(0, 3),
          [&completed](const int& c, std::uint64_t s) {
            if (c == 2 && s == 1) throw std::runtime_error("boom");
            completed.fetch_add(1, std::memory_order_relaxed);
            return 0;
          },
          2),
      std::runtime_error);
  EXPECT_EQ(completed.load(), 5);  // the other five runs still ran
}

TEST(ReplicationTest, ParallelSimulationsMatchSequentialBitExactly) {
  // The real guarantee the figure benches rely on: fanning replications
  // out across workers yields the exact per-(config, seed) metrics the
  // sequential loop produces — simulations share no mutable state.
  app::ScenarioConfig cfg;
  cfg.record_series = false;
  const std::vector<app::Protocol> protocols = {app::Protocol::kTcpWifi,
                                                app::Protocol::kMptcp};
  const std::vector<std::uint64_t> seeds = {3, 4};
  constexpr std::uint64_t kBytes = 512 * 1024;
  auto one_run = [&cfg](const app::Protocol& p, std::uint64_t seed) {
    app::Scenario s(cfg);
    return s.run_download(p, kBytes, seed);
  };

  const auto parallel = run_replications(protocols, seeds, one_run, 4);

  for (std::size_t i = 0; i < protocols.size(); ++i) {
    for (std::size_t j = 0; j < seeds.size(); ++j) {
      const app::RunMetrics sequential = one_run(protocols[i], seeds[j]);
      const app::RunMetrics& par = parallel[i][j];
      EXPECT_TRUE(par.completed);
      EXPECT_EQ(par.bytes_received, sequential.bytes_received);
      // Bit-exact, not approximate: same seed, same simulation.
      EXPECT_EQ(par.download_time_s, sequential.download_time_s);
      EXPECT_EQ(par.energy_j, sequential.energy_j);
      EXPECT_EQ(par.wifi_j, sequential.wifi_j);
      EXPECT_EQ(par.cell_j, sequential.cell_j);
      EXPECT_EQ(par.controller_switches, sequential.controller_switches);
    }
  }
}

}  // namespace
}  // namespace emptcp::runtime
