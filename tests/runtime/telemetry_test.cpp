// Span profiler unit tests: the disabled gate records nothing, nesting
// depths are tracked, ring overflow is counted (never silent), aggregates
// and the Chrome trace export are well-formed, and LogBuckets math holds.
#include "runtime/telemetry.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "analysis/perf_report.hpp"

namespace emptcp::runtime {
namespace {

/// Every test runs against the process-global Telemetry singleton; this
/// guard guarantees the gate is off and the buffers are empty on both
/// sides, whatever the test did.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Telemetry::instance().enable(false);
    Telemetry::instance().clear();
  }
  void TearDown() override {
    Telemetry::instance().enable(false);
    Telemetry::instance().clear();
  }
};

TEST_F(TelemetryTest, DisabledGateRecordsNothing) {
  ASSERT_FALSE(Telemetry::enabled());
  for (int i = 0; i < 100; ++i) {
    EMPTCP_SPAN("gate.off");
  }
  Telemetry::instance().counter("gate.off.counter", 1.0);
  // counter() is caller-gated, so the sample lands; spans must not.
  // (The shard engine only calls counter() inside an enabled() branch.)
  for (const auto& t : Telemetry::instance().aggregate()) {
    EXPECT_NE(t.name, "gate.off") << "span recorded while disabled";
  }
}

TEST_F(TelemetryTest, SpansRecordNameDurationAndNesting) {
  Telemetry::instance().enable(true);
  {
    EMPTCP_SPAN("outer");
    {
      EMPTCP_SPAN("inner");
    }
  }
  Telemetry::instance().enable(false);

  const std::vector<SpanRecord> spans =
      Telemetry::instance().local_buffer().spans();
  ASSERT_EQ(spans.size(), 2u);
  // Spans complete innermost-first.
  EXPECT_STREQ(spans[0].name, "inner");
  EXPECT_EQ(spans[0].depth, 1u);
  EXPECT_STREQ(spans[1].name, "outer");
  EXPECT_EQ(spans[1].depth, 0u);
  // The inner span is contained in the outer one.
  EXPECT_GE(spans[0].start_ns, spans[1].start_ns);
  EXPECT_LE(spans[0].start_ns + spans[0].dur_ns,
            spans[1].start_ns + spans[1].dur_ns);
}

TEST_F(TelemetryTest, RingOverflowCountsDropsNeverSilent) {
  SpanBuffer buf(7);
  const std::size_t extra = 37;
  SpanRecord r;
  r.name = "x";
  for (std::size_t i = 0; i < SpanBuffer::kSpanCapacity + extra; ++i) {
    r.start_ns = i;
    buf.push_span(r);
  }
  EXPECT_EQ(buf.spans().size(), SpanBuffer::kSpanCapacity);
  EXPECT_EQ(buf.spans_dropped(), extra);
  EXPECT_EQ(buf.span_total(), SpanBuffer::kSpanCapacity + extra);
  // Oldest-first unrotation: the retained window is the most recent
  // kSpanCapacity records, starting right after the dropped ones.
  const std::vector<SpanRecord> spans = buf.spans();
  EXPECT_EQ(spans.front().start_ns, extra);
  EXPECT_EQ(spans.back().start_ns,
            SpanBuffer::kSpanCapacity + extra - 1);
}

TEST_F(TelemetryTest, CounterOverflowCountsDrops) {
  SpanBuffer buf(7);
  CounterSample s;
  s.name = "c";
  for (std::size_t i = 0; i < SpanBuffer::kCounterCapacity + 5; ++i) {
    s.t_ns = i;
    buf.push_counter(s);
  }
  EXPECT_EQ(buf.counters().size(), SpanBuffer::kCounterCapacity);
  EXPECT_EQ(buf.counters_dropped(), 5u);
}

TEST_F(TelemetryTest, AggregateSumsAcrossNamesSortedByTotal) {
  Telemetry::instance().enable(true);
  for (int i = 0; i < 3; ++i) {
    EMPTCP_SPAN("agg.a");
  }
  {
    EMPTCP_SPAN("agg.b");
  }
  Telemetry::instance().enable(false);

  std::uint64_t a_count = 0;
  std::uint64_t b_count = 0;
  for (const auto& t : Telemetry::instance().aggregate()) {
    if (t.name == "agg.a") a_count = t.count;
    if (t.name == "agg.b") b_count = t.count;
    EXPECT_GE(t.total_ns, t.max_ns);
  }
  EXPECT_EQ(a_count, 3u);
  EXPECT_EQ(b_count, 1u);
}

TEST_F(TelemetryTest, InternReturnsStablePointerForEqualNames) {
  Telemetry& t = Telemetry::instance();
  const std::string built = std::string("dyn") + ".name";
  const char* p1 = t.intern(built);
  const char* p2 = t.intern("dyn.name");
  EXPECT_EQ(p1, p2);
  EXPECT_STREQ(p1, "dyn.name");
}

TEST_F(TelemetryTest, ChromeExportValidatesStructurally) {
  Telemetry::instance().enable(true);
  Telemetry::instance().set_thread_label("test-main");
  {
    EMPTCP_SPAN("export.span");
  }
  Telemetry::instance().counter("export.counter", 42.0);
  Telemetry::instance().enable(false);

  const std::string json = Telemetry::instance().to_chrome_json();
  std::size_t events = 0;
  std::string err;
  ASSERT_TRUE(analysis::validate_chrome_trace(json, events, err)) << err;
  EXPECT_GE(events, 3u);  // metadata + span + counter, at least
  EXPECT_NE(json.find("\"test-main\""), std::string::npos);
  EXPECT_NE(json.find("export.span"), std::string::npos);
  EXPECT_NE(json.find("export.counter"), std::string::npos);
}

TEST_F(TelemetryTest, ClearDropsRecordsKeepsRegistration) {
  Telemetry::instance().enable(true);
  {
    EMPTCP_SPAN("clear.me");
  }
  Telemetry::instance().enable(false);
  const std::size_t threads = Telemetry::instance().thread_count();
  ASSERT_GE(threads, 1u);
  Telemetry::instance().clear();
  EXPECT_EQ(Telemetry::instance().local_buffer().spans().size(), 0u);
  EXPECT_EQ(Telemetry::instance().spans_dropped(), 0u);
  EXPECT_EQ(Telemetry::instance().thread_count(), threads);
}

TEST_F(TelemetryTest, ThreadsGetDistinctBuffers) {
  Telemetry::instance().enable(true);
  std::thread worker([] {
    Telemetry::instance().set_thread_label("worker-x");
    EMPTCP_SPAN("thread.span");
  });
  worker.join();
  Telemetry::instance().enable(false);

  bool found = false;
  for (const auto& t : Telemetry::instance().aggregate()) {
    if (t.name == "thread.span") found = t.count == 1;
  }
  EXPECT_TRUE(found);
  const std::string json = Telemetry::instance().to_chrome_json();
  EXPECT_NE(json.find("\"worker-x\""), std::string::npos);
}

TEST(LogBucketsTest, BasicStats) {
  LogBuckets h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean(), 0.0);
  EXPECT_EQ(h.quantile_upper(0.5), 0u);
  h.add(0);
  h.add(1);
  h.add(7);
  h.add(8);
  EXPECT_EQ(h.count(), 4u);
  EXPECT_EQ(h.sum(), 16u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 8u);
  EXPECT_DOUBLE_EQ(h.mean(), 4.0);
  // Bucket layout: zeros in 0, 1 in bucket 1, 7 in bucket 3, 8 in bucket 4.
  EXPECT_EQ(h.buckets()[0], 1u);
  EXPECT_EQ(h.buckets()[1], 1u);
  EXPECT_EQ(h.buckets()[3], 1u);
  EXPECT_EQ(h.buckets()[4], 1u);
}

TEST(LogBucketsTest, QuantileUpperBoundsAndClamping) {
  LogBuckets h;
  for (int i = 0; i < 99; ++i) h.add(2);  // bucket 2, upper bound 3
  h.add(1000);                            // bucket 10, upper bound 1023
  EXPECT_EQ(h.quantile_upper(0.5), 3u);
  EXPECT_EQ(h.quantile_upper(0.98), 3u);
  // The top sample's bucket upper bound (1023) clamps to the observed max.
  EXPECT_EQ(h.quantile_upper(1.0), 1000u);
}

TEST(LogBucketsTest, MergeCombinesCountsAndExtremes) {
  LogBuckets a;
  LogBuckets b;
  a.add(4);
  b.add(100);
  b.add(0);
  a.merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.sum(), 104u);
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 100u);
  LogBuckets empty;
  a.merge(empty);  // merging an empty histogram must not disturb extremes
  EXPECT_EQ(a.min(), 0u);
  EXPECT_EQ(a.max(), 100u);
}

}  // namespace
}  // namespace emptcp::runtime
