// EpochGroup: the parked-party barrier the shard engine's epoch loop runs
// on. The contract under test: one submit per party for the group's whole
// lifetime, a full barrier per run() (all parties finish before it
// returns), reusability across thousands of epochs, and exception
// propagation to the caller.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace emptcp::runtime {
namespace {

TEST(EpochGroupTest, EveryPartyRunsOncePerEpoch) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> counts(4);
  EpochGroup group(pool, 4, [&](std::size_t party) { ++counts[party]; });
  EXPECT_EQ(group.parties(), 4u);

  for (int epoch = 1; epoch <= 100; ++epoch) {
    group.run();
    for (const auto& c : counts) EXPECT_EQ(c.load(), epoch);
  }
}

TEST(EpochGroupTest, RunIsAFullBarrier) {
  ThreadPool pool(3);
  std::atomic<int> inside{0};
  std::atomic<int> max_inside{0};
  std::atomic<bool> torn{false};
  EpochGroup group(pool, 3, [&](std::size_t) {
    const int now = ++inside;
    int prev = max_inside.load();
    while (now > prev && !max_inside.compare_exchange_weak(prev, now)) {
    }
    --inside;
  });
  for (int epoch = 0; epoch < 50; ++epoch) {
    group.run();
    // After the barrier no party can still be inside its callback.
    if (inside.load() != 0) torn = true;
  }
  EXPECT_FALSE(torn.load());
  // Sanity: the parties really do overlap sometimes (not strictly
  // guaranteed per epoch, but over 50 epochs on 3 workers it happens).
  EXPECT_GE(max_inside.load(), 1);
}

TEST(EpochGroupTest, PartiesClampToPoolSize) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  EpochGroup group(pool, 8, [&](std::size_t) { ++runs; });
  EXPECT_LE(group.parties(), 2u);
  group.run();
  EXPECT_EQ(runs.load(), static_cast<int>(group.parties()));
}

TEST(EpochGroupTest, FirstPartyExceptionRethrownAfterBarrier) {
  ThreadPool pool(2);
  std::atomic<int> runs{0};
  EpochGroup group(pool, 2, [&](std::size_t party) {
    ++runs;
    if (party == 1) throw std::runtime_error("party failed");
  });
  EXPECT_THROW(group.run(), std::runtime_error);
  // The barrier completed: both parties ran despite the throw.
  EXPECT_EQ(runs.load(), 2);
  // The group stays usable; the error does not stick to later epochs.
  EXPECT_THROW(group.run(), std::runtime_error);
  EXPECT_EQ(runs.load(), 4);
}

TEST(EpochGroupTest, DestructionReleasesWorkersForNewGroups) {
  ThreadPool pool(2);
  {
    EpochGroup first(pool, 2, [](std::size_t) {});
    first.run();
  }
  std::atomic<int> runs{0};
  EpochGroup second(pool, 2, [&](std::size_t) { ++runs; });
  second.run();
  EXPECT_EQ(runs.load(), 2);
}

}  // namespace
}  // namespace emptcp::runtime
