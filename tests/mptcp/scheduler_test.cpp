#include "mptcp/scheduler.hpp"

#include <gtest/gtest.h>

#include "support/testnet.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::mptcp {
namespace {

/// Builds a subflow whose socket is in a controllable state. The socket is
/// never connected; tests that need "established" subflows use the meta
/// socket tests instead. Here we exercise eligibility/order logic directly
/// with stub subflows whose RTT we set via force_srtt.
class SubflowSchedulerTest : public ::testing::Test {
 protected:
  Subflow& make_subflow(net::InterfaceType type, sim::Duration srtt) {
    auto sock = std::make_unique<tcp::TcpSocket>(net_.sim, net_.client,
                                                 tcp::TcpSocket::Config{});
    sock->reset_srtt_for_probe();  // srtt = 0
    // Connect+establish through the real network so it's usable.
    subflows_.push_back(std::make_unique<Subflow>(subflows_.size(), type,
                                                  std::move(sock)));
    srtts_.push_back(srtt);
    return *subflows_.back();
  }

  std::vector<Subflow*> all() {
    std::vector<Subflow*> v;
    for (auto& sf : subflows_) v.push_back(sf.get());
    return v;
  }

  test::TestNet net_;
  std::vector<std::unique_ptr<Subflow>> subflows_;
  std::vector<sim::Duration> srtts_;
};

TEST_F(SubflowSchedulerTest, NotEstablishedIsIneligible) {
  MinRttScheduler sched;
  Subflow& sf = make_subflow(net::InterfaceType::kWifi, 0);
  EXPECT_FALSE(sf.established());
  EXPECT_FALSE(sched.eligible(sf, all()));
  EXPECT_TRUE(sched.preference_order(all()).empty());
}

TEST_F(SubflowSchedulerTest, FailedSubflowIneligible) {
  MinRttScheduler sched;
  Subflow& sf = make_subflow(net::InterfaceType::kWifi, 0);
  sf.mark_failed();
  EXPECT_FALSE(sf.usable());
  EXPECT_FALSE(sched.eligible(sf, all()));
}

TEST_F(SubflowSchedulerTest, BackupFlagReflectedInDescribeAndState) {
  Subflow& sf = make_subflow(net::InterfaceType::kLte, 0);
  EXPECT_FALSE(sf.backup());
  sf.set_backup(true);
  EXPECT_TRUE(sf.backup());
  EXPECT_EQ(sf.describe(), "lte#0");
}

TEST_F(SubflowSchedulerTest, OutstandingChunksPruneAgainstDataAck) {
  Subflow& sf = make_subflow(net::InterfaceType::kWifi, 0);
  sf.outstanding().push_back(DataChunk{1, 100});
  sf.outstanding().push_back(DataChunk{101, 100});
  sf.outstanding().push_back(DataChunk{201, 100});
  sf.prune_outstanding(150);  // only the first chunk fully covered
  ASSERT_EQ(sf.outstanding().size(), 2u);
  EXPECT_EQ(sf.outstanding().front().data_seq, 101u);
  sf.prune_outstanding(301);
  EXPECT_TRUE(sf.outstanding().empty());
}

// Eligibility with live (established) subflows is covered end-to-end in
// meta_socket_test.cpp; the pure ordering logic is checked here through
// the RoundRobin rotation contract.
TEST_F(SubflowSchedulerTest, RoundRobinRotatesOverEligible) {
  RoundRobinScheduler sched;
  // No eligible subflows -> empty, repeatedly.
  EXPECT_TRUE(sched.preference_order(all()).empty());
  EXPECT_TRUE(sched.preference_order(all()).empty());
}

/// Three *really established* TCP connections over the shared test
/// topology, wrapped as subflows: the round-robin churn tests need
/// usable() subflows, which the stub fixture above never produces.
struct ChurnWorld {
  ChurnWorld() {
    listener = std::make_unique<tcp::TcpListener>(
        net.server, test::kPort, [this](const net::Packet& syn) {
          server_socks.push_back(tcp::TcpSocket::accept(
              net.sim, net.server, tcp::TcpSocket::Config{}, syn));
        });
    for (std::size_t i = 0; i < 3; ++i) {
      auto sock = std::make_unique<tcp::TcpSocket>(net.sim, net.client,
                                                   tcp::TcpSocket::Config{});
      subflows.push_back(std::make_unique<Subflow>(
          i, net::InterfaceType::kWifi, std::move(sock)));
      subflows.back()->socket().connect(test::kWifiAddr,
                                        static_cast<net::Port>(5001 + i),
                                        test::kServerAddr, test::kPort);
    }
    net.sim.run_until(sim::seconds(1));
  }

  std::vector<Subflow*> all() {
    std::vector<Subflow*> v;
    for (auto& sf : subflows) v.push_back(sf.get());
    return v;
  }

  test::TestNet net;
  std::unique_ptr<tcp::TcpListener> listener;
  std::vector<std::unique_ptr<tcp::TcpSocket>> server_socks;
  std::vector<std::unique_ptr<Subflow>> subflows;
};

// Regression for the rotation-drift bug: the scheduler used to rotate by a
// call counter modulo the *current* eligible count, so any change in the
// eligible set (subflow failure, backup flip, join) desynchronised the
// rotation and could serve the same subflow twice in a row while starving
// another. Fairness must be anchored to the identity served last round.
TEST_F(SubflowSchedulerTest, RoundRobinResumesAfterLastServedUnderChurn) {
  ChurnWorld w;
  ASSERT_TRUE(w.subflows[0]->usable());
  ASSERT_TRUE(w.subflows[1]->usable());
  ASSERT_TRUE(w.subflows[2]->usable());

  RoundRobinScheduler sched;
  auto order = sched.preference_order(w.all());
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order[0]->id(), 0u);  // round 1 serves A
  order = sched.preference_order(w.all());
  EXPECT_EQ(order[0]->id(), 1u);  // round 2 serves B

  // B dies between rounds. The next turn belongs to B's successor C; the
  // drifted counter arithmetic (2 % 2 == 0) handed it back to A.
  w.subflows[1]->mark_failed();
  order = sched.preference_order(w.all());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0]->id(), 2u);
  EXPECT_EQ(order[1]->id(), 0u);

  // The survivors keep alternating: nobody is served twice in a row.
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 0u);
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 2u);
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 0u);
}

TEST_F(SubflowSchedulerTest, RoundRobinAbsorbsDepartureAndReturn) {
  ChurnWorld w;
  RoundRobinScheduler sched;
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 0u);

  // A (just served) leaves the eligible set via the backup flag while a
  // regular subflow exists; its successor B is up next, and the rotation
  // continues to C even though the set shrank.
  w.subflows[0]->set_backup(true);
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 1u);
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 2u);

  // A returns: after C the wrap-around reaches A again, with no double
  // serve and no skipped member.
  w.subflows[0]->set_backup(false);
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 0u);
  EXPECT_EQ(sched.preference_order(w.all())[0]->id(), 1u);
}

TEST_F(SubflowSchedulerTest, RoundRobinFullCycleVisitsEveryoneOnce) {
  ChurnWorld w;
  RoundRobinScheduler sched;
  std::vector<std::size_t> served;
  for (int i = 0; i < 6; ++i) {
    served.push_back(sched.preference_order(w.all())[0]->id());
  }
  const std::vector<std::size_t> expected = {0, 1, 2, 0, 1, 2};
  EXPECT_EQ(served, expected);
}

}  // namespace
}  // namespace emptcp::mptcp
