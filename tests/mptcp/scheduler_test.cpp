#include "mptcp/scheduler.hpp"

#include <gtest/gtest.h>

#include "support/testnet.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::mptcp {
namespace {

/// Builds a subflow whose socket is in a controllable state. The socket is
/// never connected; tests that need "established" subflows use the meta
/// socket tests instead. Here we exercise eligibility/order logic directly
/// with stub subflows whose RTT we set via force_srtt.
class SubflowSchedulerTest : public ::testing::Test {
 protected:
  Subflow& make_subflow(net::InterfaceType type, sim::Duration srtt) {
    auto sock = std::make_unique<tcp::TcpSocket>(net_.sim, net_.client,
                                                 tcp::TcpSocket::Config{});
    sock->reset_srtt_for_probe();  // srtt = 0
    // Connect+establish through the real network so it's usable.
    subflows_.push_back(std::make_unique<Subflow>(subflows_.size(), type,
                                                  std::move(sock)));
    srtts_.push_back(srtt);
    return *subflows_.back();
  }

  std::vector<Subflow*> all() {
    std::vector<Subflow*> v;
    for (auto& sf : subflows_) v.push_back(sf.get());
    return v;
  }

  test::TestNet net_;
  std::vector<std::unique_ptr<Subflow>> subflows_;
  std::vector<sim::Duration> srtts_;
};

TEST_F(SubflowSchedulerTest, NotEstablishedIsIneligible) {
  MinRttScheduler sched;
  Subflow& sf = make_subflow(net::InterfaceType::kWifi, 0);
  EXPECT_FALSE(sf.established());
  EXPECT_FALSE(sched.eligible(sf, all()));
  EXPECT_TRUE(sched.preference_order(all()).empty());
}

TEST_F(SubflowSchedulerTest, FailedSubflowIneligible) {
  MinRttScheduler sched;
  Subflow& sf = make_subflow(net::InterfaceType::kWifi, 0);
  sf.mark_failed();
  EXPECT_FALSE(sf.usable());
  EXPECT_FALSE(sched.eligible(sf, all()));
}

TEST_F(SubflowSchedulerTest, BackupFlagReflectedInDescribeAndState) {
  Subflow& sf = make_subflow(net::InterfaceType::kLte, 0);
  EXPECT_FALSE(sf.backup());
  sf.set_backup(true);
  EXPECT_TRUE(sf.backup());
  EXPECT_EQ(sf.describe(), "lte#0");
}

TEST_F(SubflowSchedulerTest, OutstandingChunksPruneAgainstDataAck) {
  Subflow& sf = make_subflow(net::InterfaceType::kWifi, 0);
  sf.outstanding().push_back(DataChunk{1, 100});
  sf.outstanding().push_back(DataChunk{101, 100});
  sf.outstanding().push_back(DataChunk{201, 100});
  sf.prune_outstanding(150);  // only the first chunk fully covered
  ASSERT_EQ(sf.outstanding().size(), 2u);
  EXPECT_EQ(sf.outstanding().front().data_seq, 101u);
  sf.prune_outstanding(301);
  EXPECT_TRUE(sf.outstanding().empty());
}

// Eligibility with live (established) subflows is covered end-to-end in
// meta_socket_test.cpp; the pure ordering logic is checked here through
// the RoundRobin rotation contract.
TEST_F(SubflowSchedulerTest, RoundRobinRotatesOverEligible) {
  RoundRobinScheduler sched;
  // No eligible subflows -> empty, repeatedly.
  EXPECT_TRUE(sched.preference_order(all()).empty());
  EXPECT_TRUE(sched.preference_order(all()).empty());
}

}  // namespace
}  // namespace emptcp::mptcp
