#include "mptcp/meta_socket.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/testnet.hpp"

namespace emptcp::mptcp {
namespace {

using test::TestNet;

MptcpConnection::Config make_config() {
  MptcpConnection::Config cfg;
  cfg.classify_peer = [](net::Addr a) {
    if (a == test::kWifiAddr) return net::InterfaceType::kWifi;
    if (a == test::kCellAddr) return net::InterfaceType::kLte;
    return net::InterfaceType::kEthernet;
  };
  return cfg;
}

/// Client MPTCP connection + a listening server that answers a fixed-size
/// response to the first request bytes it sees.
struct MetaPair {
  explicit MetaPair(TestNet& net, std::uint64_t response = 0,
                    MptcpConnection::Config cfg = make_config())
      : net_(net), client(net.sim, net.client, cfg) {
    listener = std::make_unique<MptcpListener>(
        net.sim, net.server, test::kPort, cfg,
        [this, response](MptcpConnection& conn) {
          server = &conn;
          MptcpConnection::Callbacks cb;
          cb.on_data = [this, response, &conn](std::uint64_t) {
            if (response > 0 && !responded_) {
              responded_ = true;
              conn.send(response);
              conn.shutdown_write();
            }
          };
          cb.on_eof = [&conn] { conn.shutdown_write(); };
          conn.set_callbacks(std::move(cb));
        });
  }

  TestNet& net_;
  MptcpConnection client;
  MptcpConnection* server = nullptr;
  std::unique_ptr<MptcpListener> listener;
  bool responded_ = false;
};

TEST(MetaSocketTest, EstablishesInitialSubflowWithMpCapable) {
  TestNet net;
  MetaPair pair(net);
  bool established = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] { established = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(1));

  EXPECT_TRUE(established);
  ASSERT_NE(pair.server, nullptr);
  EXPECT_EQ(pair.server->token(), pair.client.token());
  EXPECT_EQ(pair.client.subflows().size(), 1u);
  EXPECT_EQ(pair.server->subflows().size(), 1u);
  EXPECT_EQ(pair.server->subflows()[0]->iface(), net::InterfaceType::kWifi);
}

TEST(MetaSocketTest, MpJoinAttachesSecondSubflowByToken) {
  TestNet net;
  MetaPair pair(net);
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] { pair.client.add_subflow(test::kCellAddr); };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(1));

  ASSERT_NE(pair.server, nullptr);
  EXPECT_EQ(pair.client.subflows().size(), 2u);
  EXPECT_EQ(pair.server->subflows().size(), 2u);
  EXPECT_EQ(pair.listener->connection_count(), 1u);  // join, not new conn
  EXPECT_NE(pair.client.subflow_on(net::InterfaceType::kLte), nullptr);
}

TEST(MetaSocketTest, DuplicateSubflowOnSameInterfaceRefused) {
  TestNet net;
  MetaPair pair(net);
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(1));
  EXPECT_EQ(pair.client.add_subflow(test::kWifiAddr), nullptr);
}

TEST(MetaSocketTest, TransfersDataAcrossBothSubflows) {
  TestNet net;
  MetaPair pair(net, /*response=*/4'000'000);
  std::uint64_t received = 0;
  bool eof = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  cb.on_data = [&](std::uint64_t n) { received += n; };
  cb.on_eof = [&] {
    eof = true;
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(60));

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, 4'000'000u);
  // Both interfaces carried payload (striping happened).
  EXPECT_GT(net.wifi_if->rx_bytes(), 500'000u);
  EXPECT_GT(net.cell_if->rx_bytes(), 500'000u);
}

TEST(MetaSocketTest, AggregatesBandwidthOfBothPaths) {
  TestNet net(1, /*wifi=*/5.0, /*cell=*/5.0);
  MetaPair pair(net, /*response=*/8'000'000);
  bool eof = false;
  sim::Time done = 0;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  cb.on_eof = [&] {
    eof = true;
    done = net.sim.now();
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(120));

  ASSERT_TRUE(eof);
  const double mbps = 8e6 * 8.0 / 1e6 / sim::to_seconds(done);
  // Must beat what a single 5 Mbps path could possibly deliver.
  EXPECT_GT(mbps, 5.5);
}

TEST(MetaSocketTest, BackupSubflowCarriesNoFreshData) {
  TestNet net;
  MetaPair pair(net, /*response=*/2'000'000);
  bool eof = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] { pair.client.add_subflow(test::kCellAddr); };
  cb.on_subflow_established = [&](Subflow& sf) {
    if (sf.iface() == net::InterfaceType::kLte) {
      pair.client.request_priority(sf, /*backup=*/true);
      pair.client.send(200);  // request after the backup mark is out
    }
  };
  cb.on_eof = [&] {
    eof = true;
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(60));

  EXPECT_TRUE(eof);
  // LTE saw only handshake/option chatter, no payload striping.
  EXPECT_LT(net.cell_if->rx_bytes(), 10'000u);
}

TEST(MetaSocketTest, SuspendThenResumeViaMpPrio) {
  TestNet net;
  MetaPair pair(net, /*response=*/6'000'000);
  std::uint64_t received = 0;
  bool eof = false;
  std::uint64_t cell_rx_at_resume = 0;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  cb.on_data = [&](std::uint64_t n) {
    received += n;
    Subflow* lte = pair.client.subflow_on(net::InterfaceType::kLte);
    if (lte == nullptr) return;
    if (received > 500'000 && received < 3'000'000 && !lte->backup()) {
      pair.client.request_priority(*lte, true);  // suspend mid-transfer
    } else if (received >= 3'000'000 && lte->backup()) {
      cell_rx_at_resume = net.cell_if->rx_bytes();
      pair.client.request_priority(*lte, false);  // resume
    }
  };
  cb.on_eof = [&] {
    eof = true;
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(120));

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, 6'000'000u);
  // After the resume the LTE path carried fresh payload again.
  EXPECT_GT(net.cell_if->rx_bytes(), cell_rx_at_resume + 100'000u);
}

TEST(MetaSocketTest, ResumeAppliesSenderSideTweaks) {
  TestNet net;
  MetaPair pair(net, /*response=*/4'000'000);
  bool checked = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  std::uint64_t received = 0;
  cb.on_data = [&](std::uint64_t n) {
    received += n;
    Subflow* lte = pair.client.subflow_on(net::InterfaceType::kLte);
    if (lte == nullptr) return;
    if (received > 500'000 && received < 1'000'000) {
      pair.client.request_priority(*lte, true);
    } else if (received >= 2'000'000 && lte->backup()) {
      pair.client.request_priority(*lte, false);
    }
  };
  pair.client.set_callbacks(std::move(cb));

  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  // Poll for the server-side resumed subflow treatment (§3.6).
  for (int i = 0; i < 600 && !checked; ++i) {
    net.sim.run_until(net.sim.now() + sim::milliseconds(100));
    if (pair.server == nullptr) continue;
    Subflow* lte = pair.server->subflow_on(net::InterfaceType::kLte);
    if (lte != nullptr && !lte->backup() && received >= 2'000'000) {
      EXPECT_FALSE(lte->socket().congestion_control().cwnd_validation());
      checked = true;
    }
  }
  EXPECT_TRUE(checked);
}

TEST(MetaSocketTest, SubflowFailureReinjectsDataOnSurvivor) {
  TestNet net;
  tcp::TcpSocket::Config sock_cfg;
  sock_cfg.max_data_rtos = 3;
  auto cfg = make_config();
  cfg.subflow = sock_cfg;
  MetaPair pair(net, /*response=*/3'000'000, cfg);
  std::uint64_t received = 0;
  bool eof = false;
  bool killed = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  cb.on_data = [&](std::uint64_t n) {
    received += n;
    if (!killed && received > 500'000) {
      killed = true;
      net.cell_down->set_loss_prob(1.0);  // cellular path dies
      net.cell_up->set_loss_prob(1.0);
    }
  };
  cb.on_eof = [&] {
    eof = true;
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(300));

  EXPECT_TRUE(eof);
  EXPECT_EQ(received, 3'000'000u);  // nothing lost despite subflow death
}

TEST(MetaSocketTest, SinglePathModeRefusesSecondSubflowWhileActive) {
  TestNet net;
  auto cfg = make_config();
  cfg.mode = Mode::kSinglePath;
  MetaPair pair(net, 0, cfg);
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(1));
  EXPECT_EQ(pair.client.add_subflow(test::kCellAddr), nullptr);
}

TEST(MetaSocketTest, SinglePathModeAllowsReplacementAfterPathDeath) {
  // Paper §2.1: "In Single-Path mode, MPTCP uses only one path at a time,
  // establishing a new subflow only after the interface of the active
  // current subflow goes down."
  TestNet net;
  auto cfg = make_config();
  cfg.mode = Mode::kSinglePath;
  cfg.subflow.max_data_rtos = 3;
  MetaPair pair(net, /*response=*/4'000'000, cfg);
  std::uint64_t received = 0;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] { pair.client.send(200); };
  cb.on_data = [&](std::uint64_t n) { received += n; };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(1));
  ASSERT_EQ(pair.client.add_subflow(test::kCellAddr), nullptr);

  // The WiFi association drops: the OS signals interface-down and MPTCP
  // resets the subflows on it.
  net.wifi_if->set_up(false);
  pair.client.handle_interface_down(net::InterfaceType::kWifi);
  net.sim.run_until(sim::seconds(2));
  mptcp::Subflow* wifi = pair.client.subflow_on(net::InterfaceType::kWifi);
  ASSERT_NE(wifi, nullptr);
  ASSERT_FALSE(wifi->usable());

  // Now — and only now — a replacement subflow is allowed.
  mptcp::Subflow* lte = pair.client.add_subflow(test::kCellAddr);
  ASSERT_NE(lte, nullptr);
  net.sim.run_until(sim::seconds(120));
  EXPECT_EQ(received, 4'000'000u);  // transfer rescued over the new path
}

TEST(MetaSocketTest, PlainSynAcceptedAsSingleSubflowConnection) {
  // The TCP-over-WiFi baseline: a client that never joins a second path.
  TestNet net;
  MetaPair pair(net, /*response=*/500'000);
  std::uint64_t received = 0;
  bool eof = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] { pair.client.send(200); };
  cb.on_data = [&](std::uint64_t n) { received += n; };
  cb.on_eof = [&] {
    eof = true;
    pair.client.shutdown_write();
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(30));
  EXPECT_TRUE(eof);
  EXPECT_EQ(received, 500'000u);
  EXPECT_EQ(net.cell_if->rx_bytes(), 0u);
}

TEST(MetaSocketTest, MpPrioSurvivesLossyPath) {
  // The priority announcement repeats on every packet, so even heavy loss
  // on the announcing path cannot strand the sender on a stale priority.
  TestNet net;
  net.wifi_up->set_loss_prob(0.4);  // the path MP_PRIO(wifi ack) travels
  net.cell_up->set_loss_prob(0.4);
  MetaPair pair(net, /*response=*/8'000'000);
  std::uint64_t received = 0;
  bool suspended_requested = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  cb.on_data = [&](std::uint64_t n) {
    received += n;
    Subflow* lte = pair.client.subflow_on(net::InterfaceType::kLte);
    if (lte != nullptr && received > 500'000 && !suspended_requested) {
      suspended_requested = true;
      pair.client.request_priority(*lte, true);
    }
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);

  bool server_saw_backup = false;
  for (int i = 0; i < 600 && !server_saw_backup; ++i) {
    net.sim.run_until(net.sim.now() + sim::milliseconds(100));
    if (pair.server == nullptr) continue;
    Subflow* lte = pair.server->subflow_on(net::InterfaceType::kLte);
    server_saw_backup = lte != nullptr && lte->backup();
  }
  EXPECT_TRUE(suspended_requested);
  EXPECT_TRUE(server_saw_backup);
}

TEST(MetaSocketTest, DataFinTravelsOnTheWire) {
  // The DATA_FIN option must appear on the closing subflow packets, and
  // the receiver's connection-level EOF must fire exactly when the data
  // stream completes (the wire-level complement of the failure-path test
  // SubflowFailureReinjectsDataOnSurvivor).
  TestNet net;
  MetaPair pair(net, /*response=*/100'000);
  std::uint64_t wire_data_fin = 0;
  net.wifi_down->set_receiver([&](const net::Packet& p) {
    if (p.data_fin) wire_data_fin = std::max(wire_data_fin, *p.data_fin);
    net.wifi_if->deliver(p);
  });

  MptcpConnection::Callbacks cb;
  cb.on_established = [&] { pair.client.send(200); };
  cb.on_eof = [&] { pair.client.shutdown_write(); };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(5));

  EXPECT_TRUE(pair.client.eof());
  EXPECT_EQ(pair.client.data_bytes_received(), 100'000u);
  // Data space starts at 1, so the stream ends at 100'001.
  EXPECT_EQ(wire_data_fin, 100'001u);
}

TEST(MetaSocketTest, MinRttSchedulerPrefersFasterLiveSubflow) {
  // With a fast WiFi path (20 ms) and a slow LTE path (200 ms), the
  // min-RTT scheduler's preference order puts WiFi first once both are
  // established and measured.
  TestNet net;
  net.cell_up->set_prop_delay(sim::milliseconds(100));
  net.cell_down->set_prop_delay(sim::milliseconds(100));
  MetaPair pair(net, /*response=*/64'000'000);  // still mid-transfer at 3 s
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(3));

  ASSERT_NE(pair.server, nullptr);
  MinRttScheduler sched;
  const auto order = sched.preference_order(pair.server->subflows());
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0]->iface(), net::InterfaceType::kWifi);
  EXPECT_LT(order[0]->socket().srtt(), order[1]->socket().srtt());
}

TEST(MetaSocketTest, ConnectionClosesFullyOnBothEnds) {
  TestNet net;
  MetaPair pair(net, /*response=*/100'000);
  bool closed = false;
  MptcpConnection::Callbacks cb;
  cb.on_established = [&] {
    pair.client.add_subflow(test::kCellAddr);
    pair.client.send(200);
  };
  cb.on_eof = [&] { pair.client.shutdown_write(); };
  cb.on_closed = [&] { closed = true; };
  pair.client.set_callbacks(std::move(cb));
  pair.client.connect(test::kWifiAddr, test::kServerAddr, test::kPort);
  net.sim.run_until(sim::seconds(60));

  EXPECT_TRUE(closed);
  EXPECT_TRUE(pair.client.closed());
  for (Subflow* sf : pair.client.subflows()) {
    EXPECT_EQ(sf->socket().state(), tcp::TcpState::kDone);
  }
}

}  // namespace
}  // namespace emptcp::mptcp
