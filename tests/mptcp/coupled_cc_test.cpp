#include "mptcp/coupled_cc.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emptcp::mptcp {
namespace {

tcp::CongestionControl::Config config() {
  tcp::CongestionControl::Config cfg;
  cfg.mss = 1000;
  cfg.initial_window_segments = 10;
  return cfg;
}

/// Drives a controller into congestion avoidance.
void to_ca(tcp::CongestionControl& cc) { cc.on_loss_event(); }

TEST(LiaTest, SingleSubflowAlphaIsOne) {
  LiaState state;
  LiaCoupledCc cc(config(), state);
  state.add_member({&cc, [] { return sim::milliseconds(50); }});
  EXPECT_NEAR(state.alpha(), 1.0, 1e-9);
}

TEST(LiaTest, EqualSubflowsAlphaHalf) {
  // RFC 6356: with n identical subflows alpha = 1/n (total grows like one
  // Reno flow).
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(50); }});
  state.add_member({&b, [] { return sim::milliseconds(50); }});
  EXPECT_NEAR(state.alpha(), 0.5, 1e-9);
}

TEST(LiaTest, AsymmetricRttTwoSubflowsMatchHandComputedAlpha) {
  // RFC 6356: alpha = total * max(c_i/rtt_i^2) / (sum c_i/rtt_i)^2.
  // Both cwnds start at 10 segments * 1000 B = 10000 B; rtts 50/100 ms
  // (units cancel):
  //   max term = 10000/50^2 = 4
  //   sum      = 10000/50 + 10000/100 = 300
  //   alpha    = 20000 * 4 / 300^2 = 8/9.
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(50); }});
  state.add_member({&b, [] { return sim::milliseconds(100); }});
  EXPECT_NEAR(state.alpha(), 8.0 / 9.0, 1e-9);
}

TEST(LiaTest, AsymmetricRttThreeSubflowsMatchHandComputedAlpha) {
  // Equal 10000 B cwnds, rtts 25/50/100 ms:
  //   max term = 10000/25^2 = 16
  //   sum      = 400 + 200 + 100 = 700
  //   alpha    = 30000 * 16 / 700^2 = 48/49.
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  LiaCoupledCc c(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(25); }});
  state.add_member({&b, [] { return sim::milliseconds(50); }});
  state.add_member({&c, [] { return sim::milliseconds(100); }});
  EXPECT_NEAR(state.alpha(), 48.0 / 49.0, 1e-9);
}

TEST(LiaTest, CoupledIncreaseSlowerThanReno) {
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(50); }});
  state.add_member({&b, [] { return sim::milliseconds(50); }});
  to_ca(a);
  to_ca(b);

  tcp::RenoCongestionControl reno(config());
  to_ca(reno);

  const std::uint64_t a0 = a.cwnd();
  const std::uint64_t r0 = reno.cwnd();
  // Ack one full window on each.
  for (int i = 0; i < 5; ++i) {
    a.on_ack(1000);
    reno.on_ack(1000);
  }
  EXPECT_LT(a.cwnd() - a0, reno.cwnd() - r0);
}

TEST(LiaTest, FasterSubflowGetsCappedByRenoTerm) {
  // The per-subflow increase never exceeds the uncoupled Reno increase.
  LiaState state;
  LiaCoupledCc fast(config(), state);
  LiaCoupledCc slow(config(), state);
  state.add_member({&fast, [] { return sim::milliseconds(10); }});
  state.add_member({&slow, [] { return sim::milliseconds(200); }});
  to_ca(fast);
  to_ca(slow);

  tcp::RenoCongestionControl reno(config());
  to_ca(reno);

  const std::uint64_t f0 = fast.cwnd();
  const std::uint64_t r0 = reno.cwnd();
  fast.on_ack(1000);
  reno.on_ack(1000);
  EXPECT_LE(fast.cwnd() - f0, reno.cwnd() - r0);
}

TEST(LiaTest, AlphaRecomputesAfterMemberRemoval) {
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(50); }});
  state.add_member({&b, [] { return sim::milliseconds(50); }});
  EXPECT_NEAR(state.alpha(), 0.5, 1e-9);
  state.remove_member(&b);
  EXPECT_NEAR(state.alpha(), 1.0, 1e-9);
  EXPECT_EQ(state.total_cwnd(), a.cwnd());
}

TEST(LiaTest, EmptyStateAlphaDefaultsToOne) {
  LiaState state;
  EXPECT_DOUBLE_EQ(state.alpha(), 1.0);
  EXPECT_EQ(state.total_cwnd(), 0u);
}

TEST(LiaTest, ZeroRttGuarded) {
  // A resumed subflow has srtt forced to 0; alpha must stay finite.
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  state.add_member({&a, [] { return sim::Duration{0}; }});
  state.add_member({&b, [] { return sim::milliseconds(100); }});
  const double alpha = state.alpha();
  EXPECT_TRUE(std::isfinite(alpha));
  EXPECT_GT(alpha, 0.0);
}

TEST(LiaTest, SlowStartStillDoublesIndividually) {
  // RFC 6356 couples only congestion avoidance.
  LiaState state;
  LiaCoupledCc a(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(50); }});
  EXPECT_TRUE(a.in_slow_start());
  const std::uint64_t before = a.cwnd();
  for (int i = 0; i < 10; ++i) a.on_ack(1000);
  EXPECT_EQ(a.cwnd(), 2 * before);
}

TEST(LiaTest, TotalCwndSumsMembers) {
  LiaState state;
  LiaCoupledCc a(config(), state);
  LiaCoupledCc b(config(), state);
  state.add_member({&a, [] { return sim::milliseconds(50); }});
  state.add_member({&b, [] { return sim::milliseconds(50); }});
  EXPECT_EQ(state.total_cwnd(), a.cwnd() + b.cwnd());
}

}  // namespace
}  // namespace emptcp::mptcp
