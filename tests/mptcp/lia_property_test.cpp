// Property tests for the RFC 6356 LIA aggressiveness bound, written
// against check::lia_increase_within_bound — the *same* predicate the
// runtime oracle evaluates on live runs — so the tested definition and the
// enforced definition can never drift apart.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <random>
#include <vector>

#include "check/hub.hpp"
#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "mptcp/coupled_cc.hpp"

namespace emptcp::check {
namespace {

TEST(LiaBoundTest, ExactRenoIncreaseIsWithinBound) {
  // acked*mss/own = 1000*1000/10000 = 100 exactly.
  LiaSample s{1000, 1000, 10'000, 20'000, 0.5, 100};
  EXPECT_TRUE(lia_increase_within_bound(s));
}

TEST(LiaBoundTest, OneByteAboveRenoIsRejected) {
  LiaSample s{1000, 1000, 10'000, 20'000, 0.5, 101};
  EXPECT_FALSE(lia_increase_within_bound(s));
}

TEST(LiaBoundTest, ZeroIncreaseIsRejected) {
  // The implementation floors at one byte; a zero increase means the floor
  // was bypassed.
  LiaSample s{1000, 1000, 10'000, 20'000, 0.5, 0};
  EXPECT_FALSE(lia_increase_within_bound(s));
}

TEST(LiaBoundTest, FloorAppliesWhenRenoRoundsToZero) {
  // acked*mss/own = 100*1000/1'000'000 = 0.1 -> bound is the 1-byte floor.
  LiaSample s{100, 1000, 1'000'000, 2'000'000, 0.5, 1};
  EXPECT_TRUE(lia_increase_within_bound(s));
  s.increase = 2;
  EXPECT_FALSE(lia_increase_within_bound(s));
}

TEST(LiaBoundTest, DegenerateWindowsAllowExactlyTheFloor) {
  LiaSample s{1000, 1000, 0, 0, 1.0, 1};
  EXPECT_TRUE(lia_increase_within_bound(s));
  s.increase = 2;
  EXPECT_FALSE(lia_increase_within_bound(s));
}

// Randomized sample vectors: any increase at or below the recomputed Reno
// bound passes, anything above fails — the predicate is exactly the RFC
// cap, not an approximation of it.
TEST(LiaBoundTest, RandomizedSamplesMatchRecomputedBound) {
  std::mt19937_64 rng(20'260'806);
  std::uniform_int_distribution<std::uint64_t> acked_d(1, 64 * 1448);
  std::uniform_int_distribution<std::uint64_t> cwnd_d(1448, 4'000'000);
  for (int trial = 0; trial < 2000; ++trial) {
    LiaSample s;
    s.acked_bytes = acked_d(rng);
    s.mss = 1448;
    s.own_cwnd = cwnd_d(rng);
    s.total_cwnd = s.own_cwnd + cwnd_d(rng);
    s.alpha = std::uniform_real_distribution<double>(0.0, 1.0)(rng);
    const double reno = static_cast<double>(s.acked_bytes) * 1448.0 /
                        static_cast<double>(s.own_cwnd);
    const auto bound =
        std::max<std::uint64_t>(static_cast<std::uint64_t>(reno), 1);
    s.increase = bound;
    EXPECT_TRUE(lia_increase_within_bound(s)) << "trial " << trial;
    s.increase = bound + 1;
    EXPECT_FALSE(lia_increase_within_bound(s)) << "trial " << trial;
  }
}

tcp::CongestionControl::Config cc_config(std::uint32_t mss,
                                         std::uint32_t iw_segments) {
  tcp::CongestionControl::Config cfg;
  cfg.mss = mss;
  cfg.initial_window_segments = iw_segments;
  return cfg;
}

// End-to-end property: drive real LiaCoupledCc populations with randomized
// shapes (member count, RTTs, windows, ack sizes) and let an oracle watch
// every coupled increase through the same hub wiring the meta-socket uses.
// The controller must never violate the bound, whatever the trajectory.
TEST(LiaPropertyTest, RandomizedControllersNeverExceedRenoBound) {
  std::mt19937_64 rng(0xE2'07'C8'19);
  Hub hub;
  Oracle oracle;
  hub.oracle = &oracle;

  for (int trial = 0; trial < 50; ++trial) {
    mptcp::LiaState state;
    const std::size_t n = 1 + rng() % 4;
    std::vector<std::unique_ptr<mptcp::LiaCoupledCc>> ccs;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint32_t mss = 500 + static_cast<std::uint32_t>(rng() % 2000);
      const auto iw = 2 + static_cast<std::uint32_t>(rng() % 20);
      auto cc = std::make_unique<mptcp::LiaCoupledCc>(cc_config(mss, iw),
                                                      state);
      cc->set_check_hub(&hub);
      const auto rtt_ms = 1 + static_cast<std::int64_t>(rng() % 300);
      state.add_member({cc.get(), [rtt_ms] {
                          return sim::milliseconds(rtt_ms);
                        }});
      ccs.push_back(std::move(cc));
    }
    for (auto& cc : ccs) cc->on_loss_event();  // into congestion avoidance

    for (int step = 0; step < 400; ++step) {
      auto& cc = *ccs[rng() % n];
      switch (rng() % 8) {
        case 0:
          cc.on_loss_event();
          break;
        case 1:
          cc.on_timeout();
          break;
        default:
          cc.on_ack(1 + rng() % (2 * cc.mss()));
          break;
      }
    }
  }

  EXPECT_GT(oracle.checks_run(), 0u);
  EXPECT_TRUE(oracle.ok()) << oracle.report();
}

// The oracle flags exactly what the predicate rejects — feeding it an
// out-of-bound sample must produce a lia.increase_bound violation.
TEST(LiaPropertyTest, OracleRejectsOutOfBoundSample) {
  Oracle oracle;
  oracle.on_lia_increase({1000, 1000, 10'000, 20'000, 0.5, 101});
  ASSERT_FALSE(oracle.ok());
  EXPECT_EQ(oracle.violations().front().invariant, "lia.increase_bound");
}

}  // namespace
}  // namespace emptcp::check
