# Tier-1 campaign smoke: run the committed smoke spec end to end (tiny
# 2-protocol x 2-seed grid, seconds of wall clock), then re-run it and
# require a full resume — no cell recomputed, byte-identical report.
# Invoked by ctest with:
#   -DCAMPAIGN_TOOL=<path to emptcp-campaign>
#   -DSPEC=<examples/campaigns/smoke.spec>
#   -DOUT_DIR=<scratch campaign directory>
foreach(var CAMPAIGN_TOOL SPEC OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "campaign_smoke_gate: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})

execute_process(
  COMMAND ${CAMPAIGN_TOOL} --out ${OUT_DIR} ${SPEC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE first_report
  ERROR_VARIABLE first_log)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "campaign_smoke_gate: first run failed (${rc}): "
                      "${first_log}")
endif()
if(NOT first_log MATCHES "4 ran, 0 resumed")
  message(FATAL_ERROR "campaign_smoke_gate: expected 4 fresh cells, got: "
                      "${first_log}")
endif()
if(NOT first_report MATCHES "all digests and energy cross-checks ok")
  message(FATAL_ERROR "campaign_smoke_gate: report integrity check failed:\n"
                      "${first_report}")
endif()
if(NOT first_report MATCHES "== flows ")
  message(FATAL_ERROR "campaign_smoke_gate: report lacks the per-flow "
                      "distribution section:\n${first_report}")
endif()

# Second invocation: everything resumes from the ledger, and the rendered
# report is byte-identical (same artifacts -> same report).
execute_process(
  COMMAND ${CAMPAIGN_TOOL} --out ${OUT_DIR} ${SPEC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE second_report
  ERROR_VARIABLE second_log)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "campaign_smoke_gate: resume run failed (${rc}): "
                      "${second_log}")
endif()
if(NOT second_log MATCHES "0 ran, 4 resumed")
  message(FATAL_ERROR "campaign_smoke_gate: expected a full resume, got: "
                      "${second_log}")
endif()
if(NOT first_report STREQUAL second_report)
  message(FATAL_ERROR "campaign_smoke_gate: resumed report differs from the "
                      "original")
endif()

message(STATUS "campaign_smoke_gate: run + resume + report all consistent")
