#include "stats/summary.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace emptcp::stats {
namespace {

TEST(SummaryTest, MeanBasics) {
  EXPECT_DOUBLE_EQ(mean({2.0}), 2.0);
  EXPECT_DOUBLE_EQ(mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_THROW(mean({}), std::invalid_argument);
}

TEST(SummaryTest, StddevMatchesPaperEquation2) {
  // Eq. 2: s = sqrt( 1/(n-1) * sum (x_i - mean)^2 ).
  EXPECT_DOUBLE_EQ(stddev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
                   std::sqrt(32.0 / 7.0));
  EXPECT_DOUBLE_EQ(stddev({5.0}), 0.0);
}

TEST(SummaryTest, SemIsStddevOverSqrtN) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(sem(xs), stddev(xs) / 2.0);
}

TEST(SummaryTest, QuantileInterpolates) {
  const std::vector<double> xs{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile(xs, 0.25), 1.75);
}

TEST(SummaryTest, QuantileUnsortedInput) {
  EXPECT_DOUBLE_EQ(quantile({9.0, 1.0, 5.0}, 0.5), 5.0);
}

TEST(SummaryTest, SortedSampleMatchesQuantileWithoutResorting) {
  const std::vector<double> xs{9.0, 1.0, 5.0, 3.0, 7.0};
  const SortedSample sorted(xs);
  for (const double q : {0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 1.0}) {
    EXPECT_DOUBLE_EQ(sorted.quantile(q), quantile(xs, q)) << "q=" << q;
  }
  // The stored data is ascending — quantile_sorted's precondition.
  EXPECT_TRUE(std::is_sorted(sorted.data().begin(), sorted.data().end()));
  EXPECT_EQ(sorted.size(), xs.size());
}

TEST(SummaryTest, QuantileSortedRequiresNoCopy) {
  const std::vector<double> sorted{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.5), 2.5);
  EXPECT_DOUBLE_EQ(quantile_sorted(sorted, 0.25), 1.75);
}

TEST(SummaryTest, WhiskerFromSortedSampleMatchesVectorPath) {
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100};
  const Whisker a = whisker(xs);
  const Whisker b = whisker(SortedSample(xs));
  EXPECT_DOUBLE_EQ(a.q1, b.q1);
  EXPECT_DOUBLE_EQ(a.median, b.median);
  EXPECT_DOUBLE_EQ(a.q3, b.q3);
  EXPECT_DOUBLE_EQ(a.lo_whisker, b.lo_whisker);
  EXPECT_DOUBLE_EQ(a.hi_whisker, b.hi_whisker);
  EXPECT_EQ(a.outliers, b.outliers);
}

TEST(SummaryTest, WhiskerFiveNumberSummary) {
  std::vector<double> xs;
  for (int i = 1; i <= 11; ++i) xs.push_back(static_cast<double>(i));
  const Whisker w = whisker(xs);
  EXPECT_DOUBLE_EQ(w.median, 6.0);
  EXPECT_DOUBLE_EQ(w.q1, 3.5);
  EXPECT_DOUBLE_EQ(w.q3, 8.5);
  EXPECT_DOUBLE_EQ(w.lo_whisker, 1.0);
  EXPECT_DOUBLE_EQ(w.hi_whisker, 11.0);
  EXPECT_TRUE(w.outliers.empty());
  EXPECT_EQ(w.n, 11u);
}

TEST(SummaryTest, WhiskerFlagsOutliersBeyond15Iqr) {
  // §5.2: outliers sit outside [Q1 - 1.5 IQR, Q3 + 1.5 IQR].
  std::vector<double> xs{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 100};
  const Whisker w = whisker(xs);
  ASSERT_EQ(w.outliers.size(), 1u);
  EXPECT_DOUBLE_EQ(w.outliers[0], 100.0);
  EXPECT_DOUBLE_EQ(w.hi_whisker, 10.0);  // whisker ends at last in-fence
}

TEST(SummaryTest, WhiskerEmptySampleSafe) {
  const Whisker w = whisker({});
  EXPECT_EQ(w.n, 0u);
}

TEST(SummaryTest, WhiskerAllIdentical) {
  const Whisker w = whisker({5.0, 5.0, 5.0, 5.0});
  EXPECT_DOUBLE_EQ(w.q1, 5.0);
  EXPECT_DOUBLE_EQ(w.q3, 5.0);
  EXPECT_DOUBLE_EQ(w.lo_whisker, 5.0);
  EXPECT_DOUBLE_EQ(w.hi_whisker, 5.0);
  EXPECT_TRUE(w.outliers.empty());
}

}  // namespace
}  // namespace emptcp::stats
