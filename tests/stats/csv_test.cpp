#include "stats/csv.hpp"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

namespace emptcp::stats {
namespace {

TEST(CsvTest, PlainFieldsUnquoted) {
  EXPECT_EQ(csv_field("hello"), "hello");
  EXPECT_EQ(csv_field("12.5"), "12.5");
}

TEST(CsvTest, SpecialFieldsQuotedAndEscaped) {
  EXPECT_EQ(csv_field("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_field("say \"hi\""), "\"say \"\"hi\"\"\"");
  EXPECT_EQ(csv_field("line\nbreak"), "\"line\nbreak\"");
  // RFC 4180: a bare CR needs quoting too, not just LF.
  EXPECT_EQ(csv_field("cr\rhere"), "\"cr\rhere\"");
}

TEST(CsvTest, ParseCsvRoundTripsEveryEscapeClass) {
  const std::vector<std::vector<std::string>> rows{
      {"plain", "with,comma", "with \"quotes\""},
      {"multi\nline", "cr\r\nlf", ""},
      {"", "", "trailing-empty-ok"},
  };
  const std::vector<std::vector<std::string>> parsed = parse_csv(to_csv(rows));
  EXPECT_EQ(parsed, rows);
}

TEST(CsvTest, ParseCsvHandlesCrlfRowSeparators) {
  const auto rows = parse_csv("a,b\r\n1,2\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(rows[1], (std::vector<std::string>{"1", "2"}));
}

TEST(CsvTest, ParseCsvDoubledQuotesInsideQuotedField) {
  const auto rows = parse_csv("\"say \"\"hi\"\"\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
  EXPECT_EQ(rows[0][1], "x");
}

TEST(CsvTest, ParseCsvEmptyInputs) {
  EXPECT_TRUE(parse_csv("").empty());
  // A lone newline is one row with one empty field per RFC grammar — our
  // writer never emits it, and the parser must not crash on it.
  EXPECT_EQ(parse_csv("\n").size(), 1u);
}

TEST(CsvTest, RowsRender) {
  const std::string csv = to_csv({{"a", "b"}, {"1", "x,y"}});
  EXPECT_EQ(csv, "a,b\n1,\"x,y\"\n");
}

TEST(CsvTest, SeriesToCsv) {
  const Series s{{0.0, 1.0}, {1.0, 2.5}};
  const std::string csv = series_to_csv(s, "energy_j");
  EXPECT_EQ(csv, "t_s,energy_j\n0,1\n1,2.5\n");
}

TEST(CsvTest, SeriesTableJoinsOnCommonGrid) {
  const Series a{{0.0, 1.0}, {10.0, 2.0}};
  const Series b{{0.0, 5.0}, {5.0, 7.0}, {10.0, 9.0}};
  const std::string csv = series_table_to_csv({{"a", &a}, {"b", &b}}, 3);
  // Header + 3 grid rows.
  EXPECT_EQ(std::count(csv.begin(), csv.end(), '\n'), 4);
  EXPECT_NE(csv.find("t_s,a,b"), std::string::npos);
  // At t=5: a holds its last value (1), b stepped to 7.
  EXPECT_NE(csv.find("5,1,7"), std::string::npos);
}

TEST(CsvTest, SeriesTableDegenerateInputs) {
  EXPECT_TRUE(series_table_to_csv({}, 10).empty());
  const Series empty;
  EXPECT_TRUE(series_table_to_csv({{"e", &empty}}, 10).empty());
}

TEST(CsvTest, WriteFileRoundTrips) {
  const std::string path = ::testing::TempDir() + "/emptcp_csv_test.csv";
  ASSERT_TRUE(write_file(path, "a,b\n1,2\n"));
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_EQ(content, "a,b\n1,2\n");
  std::remove(path.c_str());
}

TEST(CsvTest, WriteFileFailsOnBadPath) {
  EXPECT_FALSE(write_file("/nonexistent-dir-xyz/file.csv", "x"));
}

}  // namespace
}  // namespace emptcp::stats
