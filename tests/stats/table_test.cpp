#include "stats/table.hpp"

#include <gtest/gtest.h>

namespace emptcp::stats {
namespace {

TEST(TableTest, RendersHeaderAndRows) {
  Table t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"beta", "22"});
  const std::string out = t.render();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22"), std::string::npos);
}

TEST(TableTest, ColumnsAlignToWidestCell) {
  Table t({"x", "y"});
  t.add_row({"longer-cell", "1"});
  const std::string out = t.render();
  // Header row and data row have equal length.
  const auto nl1 = out.find('\n');
  const auto nl2 = out.find('\n', nl1 + 1);
  const auto nl3 = out.find('\n', nl2 + 1);
  EXPECT_EQ(nl1, nl3 - nl2 - 1);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.render());
}

TEST(TableTest, ExtraCellsIgnored) {
  Table t({"a"});
  t.add_row({"x", "overflow"});
  const std::string out = t.render();
  EXPECT_EQ(out.find("overflow"), std::string::npos);
}

TEST(TableTest, NumFormatsWithPrecision) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.0, 0), "3");
  EXPECT_EQ(Table::num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace emptcp::stats
