#include "stats/timeseries.hpp"

#include <gtest/gtest.h>

namespace emptcp::stats {
namespace {

Series ramp() {
  return Series{{0.0, 0.0}, {1.0, 10.0}, {2.0, 20.0}, {3.0, 30.0}};
}

TEST(TimeseriesTest, ValueAtUsesStepInterpolation) {
  const Series s = ramp();
  EXPECT_DOUBLE_EQ(value_at(s, -1.0), 0.0);   // before start
  EXPECT_DOUBLE_EQ(value_at(s, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(value_at(s, 1.5), 10.0);   // last value at/before t
  EXPECT_DOUBLE_EQ(value_at(s, 3.0), 30.0);
  EXPECT_DOUBLE_EQ(value_at(s, 99.0), 30.0);  // after end
}

TEST(TimeseriesTest, ValueAtEmptySeriesIsZero) {
  EXPECT_DOUBLE_EQ(value_at(Series{}, 1.0), 0.0);
}

TEST(TimeseriesTest, ResampleProducesEvenGrid) {
  const Series r = resample(ramp(), 0.0, 3.0, 4);
  ASSERT_EQ(r.size(), 4u);
  EXPECT_DOUBLE_EQ(r[0].t, 0.0);
  EXPECT_DOUBLE_EQ(r[3].t, 3.0);
  EXPECT_DOUBLE_EQ(r[1].v, 10.0);
}

TEST(TimeseriesTest, ResampleDegenerateInputs) {
  EXPECT_TRUE(resample(ramp(), 0.0, 3.0, 0).empty());
  // An inverted window yields nothing.
  EXPECT_TRUE(resample(ramp(), 3.0, 2.0, 5).empty());
  // A zero-width window collapses to a single sample at t0 (no 0/0 grid
  // spacing), as does asking for a single point.
  const Series zero_width = resample(ramp(), 3.0, 3.0, 5);
  ASSERT_EQ(zero_width.size(), 1u);
  EXPECT_DOUBLE_EQ(zero_width[0].t, 3.0);
  EXPECT_DOUBLE_EQ(zero_width[0].v, 30.0);
  const Series single = resample(ramp(), 1.0, 3.0, 1);
  ASSERT_EQ(single.size(), 1u);
  EXPECT_DOUBLE_EQ(single[0].t, 1.0);
  EXPECT_DOUBLE_EQ(single[0].v, 10.0);
  // Resampling an empty series yields finite zeros, not UB.
  const Series empty_src = resample(Series{}, 0.0, 1.0, 3);
  ASSERT_EQ(empty_src.size(), 3u);
  EXPECT_DOUBLE_EQ(empty_src[1].v, 0.0);
}

TEST(TimeseriesTest, SparklineHasRequestedWidth) {
  const std::string sl = sparkline(ramp(), 20);
  // Each glyph is a 3-byte UTF-8 block character.
  EXPECT_EQ(sl.size(), 20u * 3u);
  EXPECT_TRUE(sparkline(Series{}).empty());
}

TEST(TimeseriesTest, AsciiChartContainsAxisAndMarks) {
  const std::string chart = ascii_chart(ramp(), 40, 8);
  EXPECT_NE(chart.find('#'), std::string::npos);
  EXPECT_NE(chart.find("t="), std::string::npos);
  // 8 data rows + separator + time label.
  int lines = 0;
  for (char c : chart) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 10);
}

TEST(TimeseriesTest, AsciiChartFlatSeriesSafe) {
  const Series flat{{0.0, 5.0}, {10.0, 5.0}};
  EXPECT_FALSE(ascii_chart(flat).empty());  // no divide-by-zero
}

}  // namespace
}  // namespace emptcp::stats
