// End-to-end checks of the paper's headline claims about eMPTCP, §4-§5.
#include <gtest/gtest.h>

#include "app/scenario.hpp"

namespace emptcp::app {
namespace {

constexpr std::uint64_t kMB = 1024 * 1024;

ScenarioConfig config(double wifi, double cell) {
  ScenarioConfig cfg;
  cfg.wifi.down_mbps = wifi;
  cfg.cell.down_mbps = cell;
  cfg.record_series = false;
  return cfg;
}

TEST(EmptcpBehaviourTest, StaticGoodWifi_Fig5) {
  // "eMPTCP chooses WiFi-only, effectively behaving similar to single-path
  // TCP over WiFi" — and spends much less than MPTCP.
  Scenario s(config(12.0, 9.0));
  const RunMetrics tcp = s.run_download(Protocol::kTcpWifi, 16 * kMB, 1);
  const RunMetrics mptcp = s.run_download(Protocol::kMptcp, 16 * kMB, 1);
  const RunMetrics emptcp = s.run_download(Protocol::kEmptcp, 16 * kMB, 1);

  EXPECT_FALSE(emptcp.cellular_used);
  EXPECT_NEAR(emptcp.energy_j, tcp.energy_j, tcp.energy_j * 0.08);
  EXPECT_NEAR(emptcp.download_time_s, tcp.download_time_s,
              tcp.download_time_s * 0.08);
  EXPECT_LT(emptcp.energy_j, mptcp.energy_j * 0.95);
}

TEST(EmptcpBehaviourTest, StaticBadWifi_Fig6) {
  // "when WiFi bandwidth is small (<1 Mbps) ... eMPTCP yields almost the
  // same performance as MPTCP by using both interfaces."
  Scenario s(config(0.8, 9.0));
  const RunMetrics tcp = s.run_download(Protocol::kTcpWifi, 16 * kMB, 1);
  const RunMetrics mptcp = s.run_download(Protocol::kMptcp, 16 * kMB, 1);
  const RunMetrics emptcp = s.run_download(Protocol::kEmptcp, 16 * kMB, 1);

  EXPECT_TRUE(emptcp.cellular_used);
  // eMPTCP tracks MPTCP within the LTE-startup delay margin.
  EXPECT_LT(emptcp.download_time_s, mptcp.download_time_s + 8.0);
  EXPECT_NEAR(emptcp.energy_j, mptcp.energy_j, mptcp.energy_j * 0.25);
  // Both MPTCP flavours crush TCP-over-bad-WiFi on time.
  EXPECT_LT(emptcp.download_time_s, tcp.download_time_s * 0.4);
}

TEST(EmptcpBehaviourTest, BandwidthChanges_Fig8) {
  // Random on-off WiFi: eMPTCP saves energy vs MPTCP at some time cost,
  // and beats TCP/WiFi on completion time.
  // Paper parameters: >=10 / <=1 Mbps states with 40 s mean sojourns.
  ScenarioConfig cfg = config(12.0, 9.0);
  cfg.wifi_onoff = true;
  cfg.onoff.high_mbps = 12.0;
  cfg.onoff.low_mbps = 0.8;
  cfg.onoff.mean_high_s = 40.0;
  cfg.onoff.mean_low_s = 40.0;
  Scenario s(cfg);

  double e_tcp = 0;
  double e_mptcp = 0;
  double e_emptcp = 0;
  double t_tcp = 0;
  double t_mptcp = 0;
  double t_emptcp = 0;
  const int runs = 3;
  for (int i = 0; i < runs; ++i) {
    const auto a = s.run_download(Protocol::kTcpWifi, 96 * kMB, 100 + i);
    const auto b = s.run_download(Protocol::kMptcp, 96 * kMB, 100 + i);
    const auto c = s.run_download(Protocol::kEmptcp, 96 * kMB, 100 + i);
    ASSERT_TRUE(a.completed && b.completed && c.completed);
    e_tcp += a.energy_j;
    e_mptcp += b.energy_j;
    e_emptcp += c.energy_j;
    t_tcp += a.download_time_s;
    t_mptcp += b.download_time_s;
    t_emptcp += c.download_time_s;
  }
  // Shape per the paper: e(eMPTCP) < e(MPTCP); t(MPTCP) <= t(eMPTCP)
  // < t(TCP/WiFi).
  EXPECT_LT(e_emptcp, e_mptcp);
  EXPECT_LE(t_mptcp, t_emptcp);
  EXPECT_LT(t_emptcp, t_tcp);
}

TEST(EmptcpBehaviourTest, EmptcpSuspendsAndResumesOverOnOffWifi) {
  ScenarioConfig cfg = config(12.0, 9.0);
  cfg.wifi_onoff = true;
  cfg.onoff.high_mbps = 12.0;
  cfg.onoff.low_mbps = 0.6;
  cfg.onoff.mean_high_s = 15.0;
  cfg.onoff.mean_low_s = 15.0;
  cfg.onoff.start_high = false;  // force an early LTE join
  Scenario s(cfg);
  const RunMetrics m = s.run_timed(Protocol::kEmptcp, sim::seconds(120), 9);
  EXPECT_TRUE(m.cellular_used);
  // The controller actually moved between states at least once.
  EXPECT_GE(m.controller_switches, 1u);
}

TEST(EmptcpBehaviourTest, Mobility_Fig13) {
  // Per-byte energy: eMPTCP below MPTCP; download amount: eMPTCP above
  // TCP/WiFi (it uses LTE during the coverage gaps).
  ScenarioConfig cfg = config(18.0, 9.0);
  cfg.mobility = true;
  Scenario s(cfg);
  const RunMetrics tcp = s.run_timed(Protocol::kTcpWifi,
                                     sim::seconds(250), 21);
  const RunMetrics mptcp = s.run_timed(Protocol::kMptcp,
                                       sim::seconds(250), 21);
  const RunMetrics emptcp = s.run_timed(Protocol::kEmptcp,
                                        sim::seconds(250), 21);

  EXPECT_LT(emptcp.energy_per_mb(), mptcp.energy_per_mb());
  EXPECT_GT(emptcp.bytes_received, tcp.bytes_received);
  EXPECT_LE(emptcp.bytes_received, mptcp.bytes_received);
}

TEST(EmptcpBehaviourTest, WildCategories_Fig16Shape) {
  // Good WiFi & Bad LTE: eMPTCP ≈ half of MPTCP's energy (paper: "uses
  // roughly 50% of the energy that MPTCP does, since it never utilizes
  // the LTE subflow").
  Scenario s(config(15.0, 2.0));
  const RunMetrics mptcp = s.run_download(Protocol::kMptcp, 16 * kMB, 2);
  const RunMetrics emptcp = s.run_download(Protocol::kEmptcp, 16 * kMB, 2);
  EXPECT_FALSE(emptcp.cellular_used);
  EXPECT_LT(emptcp.energy_j, mptcp.energy_j * 0.7);

  // Bad WiFi & Good LTE: similar energy, slightly longer time.
  Scenario s2(config(1.5, 12.0));
  const RunMetrics mptcp2 = s2.run_download(Protocol::kMptcp, 16 * kMB, 2);
  const RunMetrics emptcp2 = s2.run_download(Protocol::kEmptcp, 16 * kMB, 2);
  EXPECT_TRUE(emptcp2.cellular_used);
  EXPECT_NEAR(emptcp2.energy_j, mptcp2.energy_j, mptcp2.energy_j * 0.3);
}

TEST(EmptcpBehaviourTest, SmallFiles_Fig15Shape) {
  // 256 KB downloads: 75-90 % energy saving vs MPTCP at similar time.
  Scenario s(config(10.0, 9.0));
  double saving_sum = 0.0;
  const int runs = 3;
  for (int i = 0; i < runs; ++i) {
    const RunMetrics mptcp =
        s.run_download(Protocol::kMptcp, 256 * 1024, 300 + i);
    const RunMetrics emptcp =
        s.run_download(Protocol::kEmptcp, 256 * 1024, 300 + i);
    EXPECT_FALSE(emptcp.cellular_used);
    saving_sum += 1.0 - emptcp.energy_j / mptcp.energy_j;
    // Download times statistically similar (sub-second transfers).
    EXPECT_NEAR(emptcp.download_time_s, mptcp.download_time_s, 1.0);
  }
  const double mean_saving = saving_sum / runs;
  EXPECT_GT(mean_saving, 0.6);
}

}  // namespace
}  // namespace emptcp::app
