// Parameterised property sweeps: invariants that must hold across the
// whole operating envelope, not just hand-picked points.
//
//   * TCP delivers every byte exactly once for any (rate, RTT, loss, size).
//   * MPTCP delivers every byte and never loses data to striping for any
//     rate pair.
//   * eMPTCP's energy never exceeds standard MPTCP's by more than the
//     switching-overhead bound, and equals TCP/WiFi's whenever it decided
//     not to wake the radio.
//   * The energy model's steady-state choice is consistent with directly
//     comparing the three per-byte costs, for every grid point and device.
#include <gtest/gtest.h>

#include <tuple>

#include "app/scenario.hpp"
#include "energy/device_profile.hpp"
#include "energy/model_calc.hpp"
#include "runtime/replication.hpp"

namespace emptcp {
namespace {

// --- TCP integrity sweep -------------------------------------------------

struct TcpSweepParam {
  double rate_mbps;
  int rtt_ms;
  double loss;
  std::uint64_t bytes;
};

class TcpTransferSweep : public ::testing::TestWithParam<TcpSweepParam> {};

TEST_P(TcpTransferSweep, DeliversExactlyAllBytes) {
  const TcpSweepParam p = GetParam();
  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = p.rate_mbps;
  cfg.wifi.up_mbps = p.rate_mbps;
  cfg.wifi.rtt = sim::milliseconds(p.rtt_ms);
  cfg.wifi.loss = p.loss;
  cfg.record_series = false;
  app::Scenario s(cfg);
  const app::RunMetrics m = s.run_download(app::Protocol::kTcpWifi,
                                           p.bytes, 77);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.bytes_received, p.bytes);
}

INSTANTIATE_TEST_SUITE_P(
    RatesRttsLosses, TcpTransferSweep,
    ::testing::Values(
        TcpSweepParam{0.5, 30, 0.0, 256 * 1024},
        TcpSweepParam{2.0, 30, 0.0, 1024 * 1024},
        TcpSweepParam{8.0, 10, 0.0, 4 * 1024 * 1024},
        TcpSweepParam{20.0, 60, 0.0, 4 * 1024 * 1024},
        TcpSweepParam{8.0, 250, 0.0, 2 * 1024 * 1024},
        TcpSweepParam{8.0, 30, 0.01, 2 * 1024 * 1024},
        TcpSweepParam{8.0, 30, 0.05, 1024 * 1024},
        TcpSweepParam{2.0, 120, 0.02, 1024 * 1024},
        TcpSweepParam{15.0, 30, 0.0, 64 * 1024},
        TcpSweepParam{1.0, 300, 0.01, 256 * 1024}));

// --- MPTCP aggregation sweep ----------------------------------------------

struct MptcpSweepParam {
  double wifi_mbps;
  double cell_mbps;
};

class MptcpAggregationSweep
    : public ::testing::TestWithParam<MptcpSweepParam> {};

TEST_P(MptcpAggregationSweep, DeliversAllBytesAndAggregates) {
  const MptcpSweepParam p = GetParam();
  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = p.wifi_mbps;
  cfg.cell.down_mbps = p.cell_mbps;
  cfg.record_series = false;
  app::Scenario s(cfg);
  constexpr std::uint64_t kBytes = 6 * 1024 * 1024;
  const app::RunMetrics m = s.run_download(app::Protocol::kMptcp, kBytes, 7);
  ASSERT_TRUE(m.completed);
  EXPECT_EQ(m.bytes_received, kBytes);

  // Aggregate goodput must exceed what the faster single path alone could
  // possibly have achieved (at 55 % utilisation, conservatively — slow-
  // start and teardown are a bigger fraction on high-rate pairs).
  const double mbps = static_cast<double>(kBytes) * 8.0 / 1e6 /
                      m.download_time_s;
  EXPECT_GT(mbps, std::max(p.wifi_mbps, p.cell_mbps) * 0.55);
}

INSTANTIATE_TEST_SUITE_P(
    RatePairs, MptcpAggregationSweep,
    ::testing::Values(MptcpSweepParam{2.0, 2.0}, MptcpSweepParam{2.0, 8.0},
                      MptcpSweepParam{8.0, 2.0}, MptcpSweepParam{8.0, 8.0},
                      MptcpSweepParam{16.0, 4.0}, MptcpSweepParam{1.0, 12.0},
                      MptcpSweepParam{12.0, 12.0}));

// --- eMPTCP safety sweep ----------------------------------------------------

class EmptcpSafetySweep : public ::testing::TestWithParam<MptcpSweepParam> {};

TEST_P(EmptcpSafetySweep, EnergyPremiumBoundedByActivationCosts) {
  // For any static operating point, eMPTCP may look like either baseline
  // (that's the design), and transient stalls may trigger false-positive
  // LTE probes (the paper observes these too, Fig. 9 / Fig. 15 outliers).
  // The invariant: its energy premium over the better baseline is fully
  // accounted for by those cellular activations (promotion + tail,
  // ~12.6 J each) — there is no unexplained energy leak.
  const MptcpSweepParam p = GetParam();
  app::ScenarioConfig cfg;
  cfg.wifi.down_mbps = p.wifi_mbps;
  cfg.cell.down_mbps = p.cell_mbps;
  cfg.record_series = false;
  constexpr std::uint64_t kBytes = 8 * 1024 * 1024;
  // The three protocol runs are independent replications — run them
  // through the parallel runner (also exercising it under the test
  // suite); the matrix preserves protocol order.
  const auto matrix = runtime::run_replications(
      std::vector<app::Protocol>{app::Protocol::kMptcp,
                                 app::Protocol::kTcpWifi,
                                 app::Protocol::kEmptcp},
      {5}, [&cfg](const app::Protocol& proto, std::uint64_t seed) {
        app::Scenario s(cfg);
        return s.run_download(proto, kBytes, seed);
      });
  const app::RunMetrics& mptcp = matrix[0][0];
  const app::RunMetrics& tcp = matrix[1][0];
  const app::RunMetrics& emptcp = matrix[2][0];
  ASSERT_TRUE(emptcp.completed);
  EXPECT_EQ(emptcp.bytes_received, kBytes);
  const double floor = std::min(mptcp.energy_j, tcp.energy_j);
  // ~12.6 J fixed cost plus a few joules of active probing per wake-up.
  const double activation_budget =
      17.0 * std::max(emptcp.cellular_activations, 1);
  EXPECT_LT(emptcp.energy_j, floor * 1.2 + activation_budget)
      << "wifi=" << p.wifi_mbps << " cell=" << p.cell_mbps
      << " activations=" << emptcp.cellular_activations;
  // And it must never be slower than TCP over WiFi by more than the
  // LTE-startup margin.
  EXPECT_LT(emptcp.download_time_s, tcp.download_time_s + 8.0);
}

INSTANTIATE_TEST_SUITE_P(
    OperatingPoints, EmptcpSafetySweep,
    ::testing::Values(MptcpSweepParam{0.5, 8.0}, MptcpSweepParam{2.0, 8.0},
                      MptcpSweepParam{4.0, 8.0}, MptcpSweepParam{8.0, 8.0},
                      MptcpSweepParam{15.0, 8.0}, MptcpSweepParam{4.0, 2.0},
                      MptcpSweepParam{1.0, 1.0}));

// --- Energy-model consistency sweep ----------------------------------------

using ModelSweepParam = std::tuple<int /*device*/, int /*tech*/>;

class EnergyModelSweep : public ::testing::TestWithParam<ModelSweepParam> {
 protected:
  energy::EnergyModel model() const {
    const auto dev = std::get<0>(GetParam()) == 0
                         ? energy::DeviceProfile::galaxy_s3()
                         : energy::DeviceProfile::nexus5();
    return dev.model(std::get<1>(GetParam()) == 0
                         ? energy::CellTech::kLte
                         : energy::CellTech::kThreeG);
  }
};

TEST_P(EnergyModelSweep, SteadyChoiceMatchesDirectComparison) {
  const energy::EnergyModel m = model();
  for (double xw = 0.1; xw <= 12.0; xw *= 1.7) {
    for (double xl = 0.1; xl <= 12.0; xl *= 1.7) {
      const double w = m.per_mbit_wifi(xw);
      const double c = m.per_mbit_cell(xl);
      const double b = m.per_mbit_both(xw, xl);
      const energy::PathChoice choice =
          energy::best_choice_steady(m, xw, xl);
      const double best = std::min({w, c, b});
      const double chosen = choice == energy::PathChoice::kWifiOnly ? w
                            : choice == energy::PathChoice::kCellOnly
                                ? c
                                : b;
      EXPECT_NEAR(chosen, best, 1e-9) << xw << "," << xl;
    }
  }
}

TEST_P(EnergyModelSweep, FiniteEnergyMonotoneInSize) {
  const energy::EnergyModel m = model();
  for (const energy::PathChoice choice :
       {energy::PathChoice::kWifiOnly, energy::PathChoice::kCellOnly,
        energy::PathChoice::kBoth}) {
    double prev = 0.0;
    for (double mb = 0.25; mb <= 64.0; mb *= 2.0) {
      const double e = energy::finite_transfer_j(m, choice,
                                                 mb * 1024 * 1024, 4.0, 6.0);
      EXPECT_GT(e, prev);
      prev = e;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DevicesTechs, EnergyModelSweep,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0, 1)));

}  // namespace
}  // namespace emptcp
