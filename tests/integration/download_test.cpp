// Cross-module integration: every protocol variant downloading through the
// full stack (scenario topology + TCP + MPTCP + energy model), checking the
// relationships the paper's evaluation is built on.
#include <gtest/gtest.h>

#include "app/scenario.hpp"

namespace emptcp::app {
namespace {

constexpr std::uint64_t kMB = 1024 * 1024;

ScenarioConfig config(double wifi, double cell) {
  ScenarioConfig cfg;
  cfg.wifi.down_mbps = wifi;
  cfg.cell.down_mbps = cell;
  cfg.record_series = false;
  return cfg;
}

TEST(DownloadIntegrationTest, AllProtocolsCompleteAndDeliverAllBytes) {
  Scenario s(config(8.0, 8.0));
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kTcpLte, Protocol::kMptcp,
                     Protocol::kEmptcp, Protocol::kWifiFirst,
                     Protocol::kMdp}) {
    const RunMetrics m = s.run_download(p, 4 * kMB, 3);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_EQ(m.bytes_received, 4 * kMB) << to_string(p);
    EXPECT_GT(m.energy_j, 0.0) << to_string(p);
  }
}

TEST(DownloadIntegrationTest, LossyPathsStillDeliverEverything) {
  ScenarioConfig cfg = config(6.0, 6.0);
  cfg.wifi.loss = 0.02;
  cfg.cell.loss = 0.01;
  Scenario s(cfg);
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kMptcp,
                     Protocol::kEmptcp}) {
    const RunMetrics m = s.run_download(p, 4 * kMB, 5);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_EQ(m.bytes_received, 4 * kMB) << to_string(p);
  }
}

TEST(DownloadIntegrationTest, HighRttPathsWork) {
  // Singapore-class RTT (paper §5: servers in SNG/AMS/WDC).
  ScenarioConfig cfg = config(8.0, 8.0);
  cfg.wifi.rtt = sim::milliseconds(250);
  cfg.cell.rtt = sim::milliseconds(280);
  Scenario s(cfg);
  const RunMetrics m = s.run_download(Protocol::kMptcp, 4 * kMB, 1);
  EXPECT_TRUE(m.completed);
  EXPECT_EQ(m.bytes_received, 4 * kMB);
}

TEST(DownloadIntegrationTest, EnergyScalesWithDownloadSize) {
  Scenario s(config(8.0, 8.0));
  const RunMetrics small = s.run_download(Protocol::kTcpWifi, 1 * kMB, 1);
  const RunMetrics large = s.run_download(Protocol::kTcpWifi, 16 * kMB, 1);
  EXPECT_GT(large.energy_j, small.energy_j * 4);
  EXPECT_GT(large.download_time_s, small.download_time_s * 4);
}

TEST(DownloadIntegrationTest, WifiFirstEnergyExceedsTcpWifi) {
  // The needless cellular activation (promotion + tail) shows up as a
  // roughly constant energy penalty over TCP/WiFi.
  Scenario s(config(10.0, 9.0));
  const RunMetrics tcp = s.run_download(Protocol::kTcpWifi, 8 * kMB, 1);
  const RunMetrics wf = s.run_download(Protocol::kWifiFirst, 8 * kMB, 1);
  EXPECT_GT(wf.energy_j, tcp.energy_j + 8.0);  // ~12.6 J of LTE fixed cost
  EXPECT_NEAR(wf.download_time_s, tcp.download_time_s,
              tcp.download_time_s * 0.2);
}

TEST(DownloadIntegrationTest, MdpSchedulerBehavesLikeTcpWifi) {
  // Paper §4.6's conclusion about Pluntke et al.'s scheduler under this
  // energy model.
  Scenario s(config(8.0, 8.0));
  const RunMetrics mdp = s.run_download(Protocol::kMdp, 8 * kMB, 1);
  const RunMetrics tcp = s.run_download(Protocol::kTcpWifi, 8 * kMB, 1);
  EXPECT_NEAR(mdp.download_time_s, tcp.download_time_s,
              tcp.download_time_s * 0.35);
  // It still pays the cellular activation it never uses.
  EXPECT_GE(mdp.energy_j, tcp.energy_j);
}

TEST(DownloadIntegrationTest, PromotionDelayVisibleOnLteHandshake) {
  // TCP over LTE must pay the promotion latency before its SYN leaves.
  ScenarioConfig cfg = config(8.0, 8.0);
  Scenario s(cfg);
  const RunMetrics wifi = s.run_download(Protocol::kTcpWifi, 64 * 1024, 1);
  const RunMetrics lte = s.run_download(Protocol::kTcpLte, 64 * 1024, 1);
  // Promotion is 260 ms on the Galaxy S3.
  EXPECT_GT(lte.download_time_s, wifi.download_time_s + 0.2);
}

TEST(DownloadIntegrationTest, SmallFileEnergyDominatedByTailForMptcp) {
  // Paper Fig. 15: for 256 KB, MPTCP pays ~the full LTE fixed cost while
  // eMPTCP stays within WiFi-only numbers (75-90 % saving).
  Scenario s(config(8.0, 8.0));
  const RunMetrics mptcp = s.run_download(Protocol::kMptcp, 256 * 1024, 1);
  const RunMetrics emptcp = s.run_download(Protocol::kEmptcp, 256 * 1024, 1);
  EXPECT_GT(mptcp.energy_j, 12.0);
  EXPECT_LT(emptcp.energy_j, mptcp.energy_j * 0.3);
}

}  // namespace
}  // namespace emptcp::app
