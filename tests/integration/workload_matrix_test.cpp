// Workload × protocol × network-condition completeness matrix: whatever
// the conditions, every workload must terminate with all its bytes, and
// the accounting invariants must hold (energy positive and bounded,
// per-interface split consistent with LTE usage).
#include <gtest/gtest.h>

#include "app/scenario.hpp"

namespace emptcp::app {
namespace {

constexpr std::uint64_t kMB = 1024 * 1024;

struct MatrixParam {
  const char* name;
  double wifi, cell, loss;
  int rtt_ms;
};

class WorkloadMatrix : public ::testing::TestWithParam<MatrixParam> {
 protected:
  ScenarioConfig config() const {
    const MatrixParam p = GetParam();
    ScenarioConfig cfg;
    cfg.wifi.down_mbps = p.wifi;
    cfg.cell.down_mbps = p.cell;
    cfg.wifi.loss = p.loss;
    cfg.wifi.rtt = sim::milliseconds(p.rtt_ms);
    cfg.cell.rtt = sim::milliseconds(p.rtt_ms + 30);
    cfg.record_series = false;
    return cfg;
  }

  static void check_accounting(const RunMetrics& m) {
    EXPECT_GT(m.energy_j, 0.0);
    EXPECT_LT(m.energy_j, 5000.0);
    EXPECT_GE(m.wifi_j, 0.0);
    EXPECT_GE(m.cell_j, 0.0);
    // Per-interface split plus platform energy covers the total.
    EXPECT_LE(m.wifi_j + m.cell_j, m.energy_j + 1e-6);
    if (m.cellular_activations == 0) {
      // A never-woken radio costs at most idle power over the run.
      EXPECT_LT(m.cell_j, 0.012 * (m.download_time_s + 25.0) + 0.5);
    } else {
      // A woken radio's energy is bounded by activations (promotion +
      // tail + probing) plus active-transfer power for the whole run.
      EXPECT_LT(m.cell_j, 17.0 * m.cellular_activations +
                              2.5 * (m.download_time_s + 25.0));
    }
  }
};

TEST_P(WorkloadMatrix, WebPageCompletesOnEveryProtocol) {
  const WebPage page = WebPage::cnn_like(33, 40);
  Scenario s(config());
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kMptcp,
                     Protocol::kEmptcp, Protocol::kWifiFirst}) {
    const RunMetrics m = s.run_web_page(p, page, 4, 3);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_EQ(m.bytes_received, page.total_bytes()) << to_string(p);
    check_accounting(m);
  }
}

TEST_P(WorkloadMatrix, StreamFinishesOnEveryProtocol) {
  VideoStreamClient::Config stream;
  stream.bitrate_mbps = 1.5;
  stream.chunk_bytes = 512 * 1024;
  stream.media_duration_s = 30.0;
  Scenario s(config());
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kMptcp,
                     Protocol::kEmptcp}) {
    const RunMetrics m = s.run_stream(p, stream, 4);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_GE(m.stall_time_s, 0.0);
    check_accounting(m);
  }
}

TEST_P(WorkloadMatrix, UploadCompletesOnEveryProtocol) {
  Scenario s(config());
  for (Protocol p : {Protocol::kTcpWifi, Protocol::kMptcp,
                     Protocol::kEmptcp}) {
    const RunMetrics m = s.run_upload(p, 2 * kMB, 9);
    EXPECT_TRUE(m.completed) << to_string(p);
    EXPECT_EQ(m.bytes_received, 2 * kMB) << to_string(p);
    check_accounting(m);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Conditions, WorkloadMatrix,
    ::testing::Values(
        MatrixParam{"clean-fast", 12.0, 9.0, 0.0, 20},
        MatrixParam{"clean-slow", 2.0, 2.0, 0.0, 40},
        MatrixParam{"lossy", 8.0, 8.0, 0.02, 30},
        MatrixParam{"far-server", 8.0, 8.0, 0.0, 250},
        MatrixParam{"asymmetric", 1.0, 12.0, 0.005, 60}),
    [](const ::testing::TestParamInfo<MatrixParam>& info) {
      std::string name = info.param.name;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace emptcp::app
