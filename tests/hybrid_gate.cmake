# Tier-1 hybrid-fidelity gate (DESIGN.md §13): run the committed
# hybrid_smoke spec once per fidelity, export both campaigns' rollups as
# flat JSON, and diff them field by field under the §13 tolerance
# contract. Any out-of-tolerance field fails the gate loudly, quoting the
# first divergent row. The gate also requires the hybrid run to have
# actually macro-stepped (run.fluid_bytes > 0 in every hybrid trace) —
# a governor that silently never engages would otherwise pass trivially.
#
# Tolerance regimes (first matching rule wins):
#   * c1 fleets run their flows back to back: per-flow FCT within
#     25% + 0.25 s, per-flow energy within 30% + 0.3 J.
#   * c4 fleets run flows concurrently: which flow packet-level AIMD
#     favours is phase noise, so per-flow bands widen (75% + 1 s /
#     50% + 0.5 J) and the strict comparison moves to the run level
#     (time within 25% + 0.25 s, energy within 25% + 0.5 J).
#   * Byte counts and flow counts are exact in every regime.
#
# Invoked by ctest with:
#   -DCAMPAIGN_TOOL=<path to emptcp-campaign>
#   -DREPORT_TOOL=<path to emptcp-report>
#   -DSPEC=<examples/campaigns/hybrid_smoke.spec>
#   -DOUT_DIR=<scratch directory; packet/ and hybrid/ are created inside>
foreach(var CAMPAIGN_TOOL REPORT_TOOL SPEC OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "hybrid_gate: missing -D${var}")
  endif()
endforeach()

file(REMOVE_RECURSE ${OUT_DIR})
file(MAKE_DIRECTORY ${OUT_DIR})

foreach(fidelity packet hybrid)
  execute_process(
    COMMAND ${CMAKE_COMMAND} -E env EMPTCP_FIDELITY=${fidelity}
            ${CAMPAIGN_TOOL} --out ${OUT_DIR}/${fidelity} ${SPEC}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE report_out
    ERROR_VARIABLE run_log)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hybrid_gate: ${fidelity} campaign failed (${rc}): "
                        "${run_log}")
  endif()
  if(NOT report_out MATCHES "all digests and energy cross-checks ok")
    message(FATAL_ERROR "hybrid_gate: ${fidelity} report integrity check "
                        "failed:\n${report_out}")
  endif()

  execute_process(
    COMMAND ${REPORT_TOOL} ${OUT_DIR}/${fidelity}
            --rollup-json ${OUT_DIR}/${fidelity}.json
    RESULT_VARIABLE rc
    OUTPUT_QUIET
    ERROR_VARIABLE export_log)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "hybrid_gate: ${fidelity} rollup export failed "
                        "(${rc}): ${export_log}")
  endif()
endforeach()

# Engagement check: every hybrid trace must report analytic advancement.
# (Packet traces carry no run.fluid_bytes metric at all.)
file(GLOB hybrid_traces ${OUT_DIR}/hybrid/*.jsonl)
if(NOT hybrid_traces)
  message(FATAL_ERROR "hybrid_gate: no hybrid traces under ${OUT_DIR}/hybrid")
endif()
foreach(trace ${hybrid_traces})
  file(STRINGS ${trace} fluid_lines REGEX "\"run.fluid_bytes\"")
  if(NOT fluid_lines MATCHES "\"value\":[1-9]")
    get_filename_component(name ${trace} NAME)
    message(FATAL_ERROR "hybrid_gate: hybrid run ${name} never macro-stepped "
                        "(run.fluid_bytes missing or zero): ${fluid_lines}")
  endif()
endforeach()

execute_process(
  COMMAND ${REPORT_TOOL} --diff ${OUT_DIR}/packet.json ${OUT_DIR}/hybrid.json
          --tol *-c4-*.flow*.fct_s=near:0.75,1.0
          --tol *-c4-*.flow*.energy_j=near:0.5,0.5
          --tol *.flow*.bytes=exact
          --tol *.flow*.fct_s=near:0.25,0.25
          --tol *.flow*.energy_j=near:0.30,0.3
          --tol *.completed=exact
          --tol *.flows_started=exact
          --tol *.flows_completed=exact
          --tol *.bytes=exact
          --tol *.energy_j=near:0.25,0.5
          --tol *.time_s=near:0.25,0.25
          --tol *=ignore
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE diff_out
  ERROR_VARIABLE diff_log)
if(NOT rc EQUAL 0)
  # Quote the first divergent row up front; the full table follows.
  string(REGEX MATCH "[^\n]*FAIL[^\n]*" first_divergence "${diff_out}")
  message(FATAL_ERROR "hybrid_gate: packet and hybrid rollups diverge.\n"
                      "first divergent field:\n  ${first_divergence}\n"
                      "full diff:\n${diff_out}${diff_log}")
endif()
if(NOT diff_out MATCHES "\\.flow0\\.fct_s")
  message(FATAL_ERROR "hybrid_gate: diff compared no per-flow fields — "
                      "rollup export is missing flows:\n${diff_out}")
endif()

message(STATUS "hybrid_gate: packet and hybrid rollups agree within the "
               "§13 tolerance contract")
