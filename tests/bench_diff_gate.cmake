# CI diff gate: re-measure the core performance envelope in quick mode and
# diff it against the committed baseline under the default tolerances.
# Invoked by ctest (see tests/CMakeLists.txt) with:
#   -DBENCH_MICRO=<path to bench_micro>
#   -DREPORT_TOOL=<path to emptcp-report>
#   -DBASELINE=<committed BENCH_core.json>
#   -DOUT_JSON=<scratch output path>
foreach(var BENCH_MICRO REPORT_TOOL BASELINE OUT_JSON)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "bench_diff_gate: missing -D${var}")
  endif()
endforeach()

# --benchmark_filter matching nothing skips the google-benchmark suite;
# only the direct harness (the part that writes the JSON) runs.
execute_process(
  COMMAND ${CMAKE_COMMAND} -E env EMPTCP_BENCH_QUICK=1
          "EMPTCP_BENCH_JSON=${OUT_JSON}"
          ${BENCH_MICRO} --benchmark_filter=^$
  RESULT_VARIABLE bench_rc)
if(NOT bench_rc EQUAL 0)
  message(FATAL_ERROR "bench_diff_gate: bench_micro failed (${bench_rc})")
endif()

execute_process(
  COMMAND ${REPORT_TOOL} --diff ${BASELINE} ${OUT_JSON}
  RESULT_VARIABLE diff_rc)
if(NOT diff_rc EQUAL 0)
  message(FATAL_ERROR
          "bench_diff_gate: core envelope regressed vs ${BASELINE} "
          "(emptcp-report --diff exited ${diff_rc})")
endif()
