// Fuzzer harness tests: the determinism contract (generation and execution
// are pure functions of the seed), the repro-file round trip, and the
// mutation-testing acceptance criterion — an injected protocol bug must be
// caught and replayable.
#include "check/fuzzer.hpp"

#include <gtest/gtest.h>

#include <set>

namespace emptcp::check {
namespace {

TEST(SeedStreamTest, SameSeedSameStreamDifferentSeedDiverges) {
  SeedStream a(42);
  SeedStream b(42);
  SeedStream c(43);
  bool diverged = false;
  for (int i = 0; i < 64; ++i) {
    const std::uint64_t va = a.next();
    EXPECT_EQ(va, b.next());
    if (va != c.next()) diverged = true;
  }
  EXPECT_TRUE(diverged);
}

TEST(SeedStreamTest, RangeIsInclusiveAndCoversEndpoints) {
  SeedStream s(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 400; ++i) {
    const std::uint64_t v = s.range(3, 6);
    ASSERT_GE(v, 3u);
    ASSERT_LE(v, 6u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 4u);  // all of {3,4,5,6} show up
}

TEST(SeedStreamTest, RealStaysInHalfOpenInterval) {
  SeedStream s(11);
  for (int i = 0; i < 400; ++i) {
    const double v = s.real(0.25, 0.75);
    ASSERT_GE(v, 0.25);
    ASSERT_LT(v, 0.75);
  }
}

TEST(SeedStreamTest, LogRangeSpansTheDecades) {
  SeedStream s(13);
  std::uint64_t lo_seen = ~0ull;
  std::uint64_t hi_seen = 0;
  for (int i = 0; i < 800; ++i) {
    const std::uint64_t v = s.log_range(1'000, 1'000'000);
    ASSERT_GE(v, 1'000u);
    ASSERT_LE(v, 1'000'000u);
    lo_seen = std::min(lo_seen, v);
    hi_seen = std::max(hi_seen, v);
  }
  EXPECT_LT(lo_seen, 10'000u);   // small sizes actually occur
  EXPECT_GT(hi_seen, 100'000u);  // and so do large ones
}

TEST(FuzzScenarioTest, GenerationIsAPureFunctionOfTheSeed) {
  for (std::uint64_t seed : {1ull, 17ull, 9999ull}) {
    const FuzzScenario a = generate_scenario(seed);
    const FuzzScenario b = generate_scenario(seed);
    EXPECT_EQ(a.summary, b.summary);
    EXPECT_EQ(a.differential, b.differential);
    EXPECT_EQ(a.outages.size(), b.outages.size());
    EXPECT_EQ(a.fleet.clients, b.fleet.clients);
    EXPECT_EQ(a.fleet.protocol, b.fleet.protocol);
    EXPECT_DOUBLE_EQ(a.fleet.scenario.wifi.down_mbps,
                     b.fleet.scenario.wifi.down_mbps);
  }
}

TEST(FuzzScenarioTest, SeedsProduceDistinctScenarios) {
  std::set<std::string> summaries;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    summaries.insert(generate_scenario(seed).summary);
  }
  // Twelve seeds collapsing to fewer than ten distinct shapes would mean
  // the stream barely feeds the generator.
  EXPECT_GE(summaries.size(), 10u);
}

TEST(FuzzRunTest, RunSeedIsDeterministic) {
  const SeedResult a = run_seed(3);
  const SeedResult b = run_seed(3);
  EXPECT_EQ(a.digest, b.digest);
  EXPECT_EQ(a.checks, b.checks);
  EXPECT_EQ(a.violations.size(), b.violations.size());
  EXPECT_TRUE(a.ok()) << a.summary;
}

TEST(FuzzRunTest, BatchDigestIndependentOfWorkerCount) {
  FuzzBatchConfig cfg;
  cfg.base_seed = 1;
  cfg.seeds = 4;
  cfg.workers = 1;
  const FuzzBatchResult seq = run_batch(cfg);
  cfg.workers = 4;
  const FuzzBatchResult par = run_batch(cfg);
  EXPECT_EQ(seq.batch_digest, par.batch_digest);
  EXPECT_EQ(seq.total_checks, par.total_checks);
  ASSERT_EQ(seq.results.size(), 4u);
  for (std::size_t i = 0; i < 4; ++i) {
    EXPECT_EQ(seq.results[i].digest, par.results[i].digest) << "seed index "
                                                            << i;
  }
  EXPECT_EQ(seq.violating_seeds, 0u);
  EXPECT_GT(seq.total_checks, 0u);
}

TEST(FuzzRunTest, RecheckOfDeterministicRunsReportsNoMismatch) {
  FuzzBatchConfig cfg;
  cfg.base_seed = 5;
  cfg.seeds = 2;
  cfg.recheck = 2;
  cfg.workers = 1;
  EXPECT_EQ(run_batch(cfg).recheck_mismatches, 0u);
}

// ISSUE acceptance: an injected reassembly bug (duplicate bytes reported
// as fresh) is caught by the exactly-once invariant, and the repro file it
// produces replays to the same violation.
TEST(FuzzMutationTest, ReassemblyDupDeliverCaughtAndReplayable) {
  ScopedMutation guard(Mutation::kReassemblyDupDeliver);
  const SeedResult r = run_seed(5);  // known catch seed; see fuzz gate
  ASSERT_FALSE(r.ok());
  bool exactly_once = false;
  for (const Violation& v : r.violations) {
    if (v.invariant == "tcp.exactly_once_delivery") exactly_once = true;
  }
  EXPECT_TRUE(exactly_once);

  const std::string repro =
      format_repro(generate_scenario(5), Mutation::kReassemblyDupDeliver, r);
  ReproHeader hdr;
  std::string err;
  ASSERT_TRUE(parse_repro(repro, hdr, err)) << err;
  EXPECT_EQ(hdr.seed, 5u);
  EXPECT_EQ(hdr.mutation, Mutation::kReassemblyDupDeliver);

  // Replaying the parsed header reproduces the violation exactly.
  ScopedMutation replay_guard(hdr.mutation);
  const SeedResult replay = run_seed(hdr.seed);
  EXPECT_FALSE(replay.ok());
  EXPECT_EQ(replay.digest, r.digest);
}

TEST(FuzzMutationTest, SchedulerIgnoreBackupCaught) {
  ScopedMutation guard(Mutation::kSchedulerIgnoreBackup);
  const SeedResult r = run_seed(10);  // known catch seed; see fuzz gate
  ASSERT_FALSE(r.ok());
  bool suppressed = false;
  for (const Violation& v : r.violations) {
    if (v.invariant == "sched.backup_suppressed") suppressed = true;
  }
  EXPECT_TRUE(suppressed);
}

TEST(ReproFormatTest, ParseRejectsGarbage) {
  ReproHeader hdr;
  std::string err;
  EXPECT_FALSE(parse_repro("", hdr, err));
  EXPECT_FALSE(parse_repro("not-a-repro-file\nseed = 1\n", hdr, err));
  EXPECT_FALSE(
      parse_repro("emptcp-fuzz-repro-v1\nseed = banana\n", hdr, err));
  EXPECT_FALSE(parse_repro(
      "emptcp-fuzz-repro-v1\nseed = 1\nmutation = frobnicate\n", hdr, err));
  EXPECT_FALSE(parse_repro("emptcp-fuzz-repro-v1\n# no seed line\n", hdr,
                           err));
}

TEST(ReproFormatTest, RoundTripsCleanResultToo) {
  const FuzzScenario sc = generate_scenario(2);
  SeedResult r;
  r.seed = 2;
  r.summary = sc.summary;
  const std::string text = format_repro(sc, Mutation::kNone, r);
  ReproHeader hdr;
  std::string err;
  ASSERT_TRUE(parse_repro(text, hdr, err)) << err;
  EXPECT_EQ(hdr.seed, 2u);
  EXPECT_EQ(hdr.mutation, Mutation::kNone);
}

TEST(MutationTest, NamesRoundTrip) {
  for (Mutation m : {Mutation::kNone, Mutation::kReassemblyDupDeliver,
                     Mutation::kSchedulerIgnoreBackup}) {
    Mutation parsed = Mutation::kNone;
    ASSERT_TRUE(mutation_from_string(to_string(m), parsed));
    EXPECT_EQ(parsed, m);
  }
  Mutation out;
  EXPECT_FALSE(mutation_from_string("no-such-mutation", out));
}

}  // namespace
}  // namespace emptcp::check
