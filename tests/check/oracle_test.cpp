// Oracle unit tests: hub/observer wiring and the direct hook checks, fed
// synthetic values so each invariant's pass and fail sides are exercised
// without running traffic.
#include "check/oracle.hpp"

#include <gtest/gtest.h>

#include "check/hub.hpp"
#include "support/testnet.hpp"

namespace emptcp::check {
namespace {

using test::TestNet;

TEST(OracleAttachTest, AttachInstallsAndDetachRestoresHubAndObserver) {
  TestNet net;
  ASSERT_EQ(hub(net.sim).oracle, nullptr);
  {
    Oracle outer;
    outer.attach(net.sim);
    EXPECT_EQ(hub(net.sim).oracle, &outer);
    {
      // Nested attachment (the fuzzer's differential baseline does this
      // implicitly across runs): the inner oracle shadows, then restores.
      Oracle inner;
      inner.attach(net.sim);
      EXPECT_EQ(hub(net.sim).oracle, &inner);
      inner.detach();
      EXPECT_EQ(hub(net.sim).oracle, &outer);
    }
  }  // outer's destructor detaches
  EXPECT_EQ(hub(net.sim).oracle, nullptr);
}

TEST(OracleTest, CleanAckViewPassesBrokenOnesFail) {
  Oracle o;
  o.on_tcp_ack({.snd_una = 1000,
                .snd_nxt = 5000,
                .in_flight = 4000,
                .sacked = 1000,
                .lost = 1448,
                .cwnd = 14'480,
                .local_port = 80});
  EXPECT_TRUE(o.ok());

  Oracle bad;
  bad.on_tcp_ack({.snd_una = 5000, .snd_nxt = 1000, .cwnd = 14'480});
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.violations().front().invariant, "tcp.seq_order");

  Oracle pipe;
  pipe.on_tcp_ack({.snd_una = 0,
                   .snd_nxt = 1000,
                   .in_flight = 1000,
                   .sacked = 800,
                   .lost = 800,
                   .cwnd = 14'480});
  ASSERT_FALSE(pipe.ok());
  EXPECT_EQ(pipe.violations().front().invariant, "tcp.pipe_nonnegative");
}

TEST(OracleTest, ExactlyOnceDeliveryIdentity) {
  Oracle o;
  o.on_tcp_rx(/*received=*/1448, /*rcv_cumulative=*/1449, 80);
  EXPECT_TRUE(o.ok());
  // A duplicate delivery inflates `received` past the cumulative point.
  o.on_tcp_rx(/*received=*/2896, /*rcv_cumulative=*/1449, 80);
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.violations().front().invariant, "tcp.exactly_once_delivery");
}

TEST(OracleTest, DssFreshAssignmentsMustExtendTheFrontier) {
  Oracle o;
  const void* conn = &o;
  o.on_dss_assign({.conn = conn,
                   .data_seq = 1,
                   .len = 1448,
                   .fresh = true,
                   .sf_usable = true});
  o.on_dss_assign({.conn = conn,
                   .data_seq = 1449,
                   .len = 1448,
                   .fresh = true,
                   .sf_usable = true});
  EXPECT_TRUE(o.ok());
  // A gap (skipping 1448 bytes) breaks contiguity.
  o.on_dss_assign({.conn = conn,
                   .data_seq = 4345,
                   .len = 1448,
                   .fresh = true,
                   .sf_usable = true});
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.violations().front().invariant, "dss.fresh_contiguous");
}

TEST(OracleTest, DssReinjectionMustStayBelowFrontier) {
  Oracle o;
  const void* conn = &o;
  o.on_dss_assign({.conn = conn,
                   .data_seq = 1,
                   .len = 2896,
                   .fresh = true,
                   .sf_usable = true});
  o.on_dss_assign({.conn = conn,
                   .data_seq = 1,
                   .len = 1448,
                   .fresh = false,
                   .sf_usable = true});
  EXPECT_TRUE(o.ok());
  o.on_dss_assign({.conn = conn,
                   .data_seq = 2897,
                   .len = 1448,
                   .fresh = false,
                   .sf_usable = true});
  ASSERT_FALSE(o.ok());
  EXPECT_EQ(o.violations().front().invariant, "dss.reinject_below_frontier");
}

TEST(OracleTest, BackupSubflowPickedOverUsableRegularIsFlagged) {
  Oracle o;
  o.on_dss_assign({.conn = &o,
                   .data_seq = 1,
                   .len = 1448,
                   .fresh = true,
                   .sf_usable = true,
                   .sf_backup = true,
                   .other_regular_usable = true});
  ASSERT_FALSE(o.ok());
  bool found = false;
  for (const Violation& v : o.violations()) {
    if (v.invariant == "sched.backup_suppressed") found = true;
  }
  EXPECT_TRUE(found);
  // Backup use is legal once no regular subflow can carry data.
  Oracle fallback;
  fallback.on_dss_assign({.conn = &fallback,
                          .data_seq = 1,
                          .len = 1448,
                          .fresh = true,
                          .sf_usable = true,
                          .sf_backup = true,
                          .other_regular_usable = false});
  EXPECT_TRUE(fallback.ok());
}

TEST(OracleTest, ViolationStormKeepsCountingPastRetentionCap) {
  Oracle::Config cfg;
  cfg.max_violations = 4;
  Oracle o(cfg);
  for (int i = 0; i < 10; ++i) {
    o.expect(false, "test.always_fails", "i=" + std::to_string(i));
  }
  EXPECT_EQ(o.violation_count(), 10u);
  EXPECT_EQ(o.violations().size(), 4u);
  EXPECT_NE(o.report().find("+6 further violations"), std::string::npos);
  EXPECT_EQ(o.checks_run(), 10u);
}

TEST(OracleTest, ReportListsInvariantAndDetail) {
  Oracle o;
  o.expect(true, "test.passes", "unused");
  EXPECT_EQ(o.report(), "");
  o.expect(false, "test.fails", "the detail");
  EXPECT_NE(o.report().find("test.fails: the detail"), std::string::npos);
}

}  // namespace
}  // namespace emptcp::check
