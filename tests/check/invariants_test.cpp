// Unit tests for the pure invariant predicates (the LIA bound has its own
// property suite in tests/mptcp/lia_property_test.cpp).
#include "check/invariants.hpp"

#include <gtest/gtest.h>

namespace emptcp::check {
namespace {

TEST(CwndBoundsTest, AcceptsWindowInsideRange) {
  EXPECT_TRUE(cwnd_bounds_ok(14'480, 100'000, 1448, 1 << 24));
  EXPECT_TRUE(cwnd_bounds_ok(1448, 1448, 1448, 1 << 24));  // both at floor
}

TEST(CwndBoundsTest, RejectsCollapsedOrRunawayWindows) {
  EXPECT_FALSE(cwnd_bounds_ok(1447, 100'000, 1448, 1 << 24));  // < 1 mss
  EXPECT_FALSE(cwnd_bounds_ok(0, 100'000, 1448, 1 << 24));
  EXPECT_FALSE(cwnd_bounds_ok((1 << 24) + 1, 100'000, 1448, 1 << 24));
  EXPECT_FALSE(cwnd_bounds_ok(14'480, 1447, 1448, 1 << 24));  // ssthresh
  EXPECT_FALSE(cwnd_bounds_ok(14'480, 100'000, 0, 1 << 24));  // mss 0
}

TEST(TcpTransitionTest, AcceptsThreeWayHandshakePaths) {
  EXPECT_TRUE(tcp_transition_ok("CLOSED", "SYN_SENT"));
  EXPECT_TRUE(tcp_transition_ok("CLOSED", "SYN_RCVD"));
  EXPECT_TRUE(tcp_transition_ok("SYN_SENT", "ESTABLISHED"));
  EXPECT_TRUE(tcp_transition_ok("SYN_RCVD", "ESTABLISHED"));
}

TEST(TcpTransitionTest, AcceptsBothTeardownSides) {
  // Active close: ESTABLISHED -> FIN_WAIT -> DONE.
  EXPECT_TRUE(tcp_transition_ok("ESTABLISHED", "FIN_WAIT"));
  EXPECT_TRUE(tcp_transition_ok("FIN_WAIT", "DONE"));
  // Passive close: ESTABLISHED -> CLOSE_WAIT -> LAST_ACK -> DONE.
  EXPECT_TRUE(tcp_transition_ok("ESTABLISHED", "CLOSE_WAIT"));
  EXPECT_TRUE(tcp_transition_ok("CLOSE_WAIT", "LAST_ACK"));
  EXPECT_TRUE(tcp_transition_ok("LAST_ACK", "DONE"));
}

TEST(TcpTransitionTest, AnyLiveStateMayAbortToDone) {
  for (const char* from : {"CLOSED", "SYN_SENT", "SYN_RCVD", "ESTABLISHED",
                           "FIN_WAIT", "CLOSE_WAIT", "LAST_ACK"}) {
    EXPECT_TRUE(tcp_transition_ok(from, "DONE")) << from;
  }
}

TEST(TcpTransitionTest, RejectsBackwardsSelfAndUnknown) {
  EXPECT_FALSE(tcp_transition_ok("ESTABLISHED", "SYN_SENT"));
  EXPECT_FALSE(tcp_transition_ok("DONE", "ESTABLISHED"));
  EXPECT_FALSE(tcp_transition_ok("DONE", "DONE"));
  EXPECT_FALSE(tcp_transition_ok("ESTABLISHED", "ESTABLISHED"));
  EXPECT_FALSE(tcp_transition_ok("FIN_WAIT", "CLOSE_WAIT"));
  EXPECT_FALSE(tcp_transition_ok("ESTABLISHED", "LISTEN"));  // not a name
  EXPECT_FALSE(tcp_transition_ok(nullptr, "DONE"));
  EXPECT_FALSE(tcp_transition_ok("CLOSED", nullptr));
}

TEST(ModeTransitionTest, AcceptsAnnouncedChanges) {
  EXPECT_TRUE(mode_transition_ok("both", "wifi-only", false));
  EXPECT_TRUE(mode_transition_ok("wifi-only", "both", false));
  EXPECT_TRUE(mode_transition_ok("both", "cell-only", true));
  EXPECT_TRUE(mode_transition_ok("cell-only", "wifi-only", true));
}

TEST(ModeTransitionTest, RejectsSelfEdgesUnknownsAndForbiddenCellOnly) {
  EXPECT_FALSE(mode_transition_ok("both", "both", true));
  EXPECT_FALSE(mode_transition_ok("both", "cell-only", false));
  EXPECT_FALSE(mode_transition_ok("both", "lte-only", true));
  EXPECT_FALSE(mode_transition_ok(nullptr, "both", true));
  EXPECT_FALSE(mode_transition_ok("both", nullptr, true));
}

}  // namespace
}  // namespace emptcp::check
