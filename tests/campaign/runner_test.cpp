// CampaignRunner: grid execution, artifact layout, checkpoint/resume and
// worker-count independence (byte-identical artifacts).
#include "campaign/runner.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <stdexcept>
#include <string>

#include "analysis/json.hpp"
#include "analysis/report.hpp"
#include "analysis/report_io.hpp"
#include "analysis/rollup.hpp"

namespace emptcp::campaign {
namespace {

namespace fs = std::filesystem;

CampaignSpec tiny_spec() {
  CampaignSpec spec;
  std::string err;
  const bool ok = parse_campaign_spec(
      "name = t\n"
      "protocols = emptcp, tcp-wifi\n"
      "fleet_sizes = 2\n"
      "seeds = 1, 2\n"
      "flows_per_client = 1\n"
      "size.kind = fixed\n"
      "size.mean_bytes = 60000\n",
      spec, err);
  EXPECT_TRUE(ok) << err;
  return spec;
}

CampaignSpec sharded_spec(std::size_t shards) {
  CampaignSpec spec;
  std::string err;
  const bool ok = parse_campaign_spec(
      "name = sh\n"
      "protocols = emptcp\n"
      "fleet_sizes = 8\n"
      "seeds = 1\n"
      "flows_per_client = 1\n"
      "size.kind = fixed\n"
      "size.mean_bytes = 50000\n"
      "sharding.clients_per_cell = 2\n"
      "sharding.cross_every = 2\n",
      spec, err);
  EXPECT_TRUE(ok) << err;
  spec.workload.sharding.shards = shards;
  return spec;
}

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  EXPECT_TRUE(in.good()) << p;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

/// Every regular file in `dir`, name -> contents.
std::map<std::string, std::string> snapshot(const fs::path& dir) {
  std::map<std::string, std::string> out;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      out[entry.path().filename().string()] = slurp(entry.path());
    }
  }
  return out;
}

class CampaignRunnerTest : public ::testing::Test {
 protected:
  fs::path fresh_dir(const char* tag) {
    const fs::path dir = fs::path(::testing::TempDir()) /
                         (std::string("campaign_") + tag + "_" +
                          ::testing::UnitTest::GetInstance()
                              ->current_test_info()
                              ->name());
    fs::remove_all(dir);
    return dir;
  }
};

TEST_F(CampaignRunnerTest, RunsGridAndWritesArtifactPairs) {
  const fs::path dir = fresh_dir("grid");
  CampaignRunner runner(tiny_spec(), dir.string());
  const CampaignResult result = runner.run(1);
  EXPECT_EQ(result.ran, 4u);
  EXPECT_EQ(result.resumed, 0u);
  ASSERT_EQ(result.cells.size(), 4u);
  for (const CellOutcome& o : result.cells) {
    EXPECT_TRUE(fs::exists(dir / (o.cell.label + ".jsonl"))) << o.cell.label;
    EXPECT_TRUE(fs::exists(dir / (o.cell.label + ".manifest.json")));
  }
  // The ledger holds one sorted line per cell.
  const std::string ledger = slurp(dir / "campaign.ledger");
  EXPECT_EQ(std::count(ledger.begin(), ledger.end(), '\n'), 4);

  // The artifacts analyze: 4 runs, flow events folded into the rollups.
  std::vector<analysis::AnalyzedRun> runs;
  std::string err;
  ASSERT_TRUE(analysis::load_analyzed_runs({dir.string()}, runs, err)) << err;
  ASSERT_EQ(runs.size(), 4u);
  for (const analysis::AnalyzedRun& r : runs) {
    EXPECT_TRUE(r.digest_ok) << r.source;
    EXPECT_EQ(r.rollup.flows_started, 2u);
    EXPECT_EQ(r.rollup.flows_completed, 2u);
    EXPECT_EQ(r.rollup.flow_fct_s.count(), 2u);
  }
}

TEST_F(CampaignRunnerTest, ResumeSkipsCompletedCells) {
  const fs::path dir = fresh_dir("resume");
  CampaignRunner first(tiny_spec(), dir.string());
  ASSERT_EQ(first.run(1).ran, 4u);
  const auto before = snapshot(dir);

  CampaignRunner second(tiny_spec(), dir.string());
  const CampaignResult result = second.run(1);
  EXPECT_EQ(result.ran, 0u);
  EXPECT_EQ(result.resumed, 4u);
  EXPECT_EQ(snapshot(dir), before);  // nothing rewritten differently
}

TEST_F(CampaignRunnerTest, ResumeAfterMidCampaignKillRecovers) {
  const fs::path dir = fresh_dir("kill");
  CampaignRunner first(tiny_spec(), dir.string());
  ASSERT_EQ(first.run(1).ran, 4u);
  const auto complete = snapshot(dir);

  // Simulate a kill mid-campaign: one cell's trace is torn (partial
  // write), another cell vanished entirely, and the ledger's final line
  // is truncated mid-digest.
  const std::string torn = first.cells()[0].label;
  const std::string missing = first.cells()[1].label;
  {
    const std::string full = slurp(dir / (torn + ".jsonl"));
    std::ofstream out(dir / (torn + ".jsonl"),
                      std::ios::binary | std::ios::trunc);
    out << full.substr(0, full.size() / 2);
  }
  fs::remove(dir / (missing + ".jsonl"));
  fs::remove(dir / (missing + ".manifest.json"));
  {
    const std::string ledger = slurp(dir / "campaign.ledger");
    std::ofstream out(dir / "campaign.ledger",
                      std::ios::binary | std::ios::trunc);
    out << ledger.substr(0, ledger.size() - 10);  // torn final line
  }

  CampaignRunner second(tiny_spec(), dir.string());
  const CampaignResult result = second.run(1);
  // The torn and missing cells re-ran (plus whichever cell lost its
  // ledger line); nothing was recomputed needlessly beyond those.
  EXPECT_GE(result.ran, 2u);
  EXPECT_LE(result.ran, 3u);
  EXPECT_EQ(result.ran + result.resumed, 4u);
  // Recovery converges to the uninterrupted run, byte for byte.
  EXPECT_EQ(snapshot(dir), complete);
}

// Regression: a spec with an empty seed list (or no protocols / fleet
// sizes) used to "succeed" instantly with zero cells and an empty ledger —
// a silently useless campaign. It must refuse loudly before touching the
// output directory.
TEST_F(CampaignRunnerTest, EmptyCellGridRefusesLoudly) {
  const fs::path dir = fresh_dir("empty");
  CampaignSpec spec = tiny_spec();
  spec.seeds.clear();
  ASSERT_EQ(spec.cell_count(), 0u);
  CampaignRunner runner(spec, dir.string());
  EXPECT_THROW(runner.run(1), std::invalid_argument);
  // No half-created campaign directory is left behind.
  EXPECT_FALSE(fs::exists(dir));
}

TEST_F(CampaignRunnerTest, ShardedCellsProduceShardCountIndependentArtifacts) {
  const fs::path d1 = fresh_dir("sh1");
  const fs::path d4 = fresh_dir("sh4");
  CampaignRunner one(sharded_spec(1), d1.string());
  CampaignRunner four(sharded_spec(4), d4.string());
  ASSERT_EQ(one.run(1).ran, 1u);
  ASSERT_EQ(four.run(1).ran, 1u);
  // Traces, manifests and the ledger are all byte-identical: the shard
  // count changes wall-clock time only, never an output byte.
  EXPECT_EQ(snapshot(d1), snapshot(d4));

  // The manifest names the cell topology — but never the shard count,
  // which would break artifact verification across machines.
  const std::string manifest = slurp(d1 / "sh-emptcp-f8-s1.manifest.json");
  EXPECT_NE(manifest.find("/cells4"), std::string::npos);
  EXPECT_NE(manifest.find("fleet.cells"), std::string::npos);
  EXPECT_NE(manifest.find("fleet.clients_per_cell"), std::string::npos);
  EXPECT_NE(manifest.find("fleet.cross_every"), std::string::npos);
  EXPECT_EQ(manifest.find("shards"), std::string::npos);

  // Sharded cells analyze like any other campaign artifact.
  std::vector<analysis::AnalyzedRun> runs;
  std::string err;
  ASSERT_TRUE(analysis::load_analyzed_runs({d1.string()}, runs, err)) << err;
  ASSERT_EQ(runs.size(), 1u);
  EXPECT_TRUE(runs[0].digest_ok);
  EXPECT_EQ(runs[0].rollup.flows_started, 8u);
  EXPECT_EQ(runs[0].rollup.flows_completed, 8u);
}

TEST_F(CampaignRunnerTest, HeartbeatReportsProgressWithoutTouchingArtifacts) {
  const fs::path plain_dir = fresh_dir("hb_off");
  const fs::path hb_dir = fresh_dir("hb_on");
  CampaignRunner plain(tiny_spec(), plain_dir.string());
  CampaignRunner hb(tiny_spec(), hb_dir.string());
  hb.set_heartbeat(0.001);  // tick fast enough to fire mid-campaign
  ASSERT_EQ(plain.run(1).ran, 4u);
  ASSERT_EQ(hb.run(2).ran, 4u);

  // The heartbeat sidecar exists and its final line reports completion.
  const fs::path hb_file = hb.heartbeat_path();
  ASSERT_TRUE(fs::exists(hb_file)) << hb_file;
  const std::string jsonl = slurp(hb_file);
  ASSERT_FALSE(jsonl.empty());
  std::size_t end = jsonl.find_last_not_of('\n');
  ASSERT_NE(end, std::string::npos);
  const std::size_t start = jsonl.rfind('\n', end);
  const std::string last = jsonl.substr(
      start == std::string::npos ? 0 : start + 1,
      end - (start == std::string::npos ? 0 : start + 1) + 1);
  std::string err;
  const auto flat = analysis::parse_json_flat(last, &err);
  ASSERT_TRUE(flat) << err << " in: " << last;
  EXPECT_EQ(analysis::json_str(*flat, "schema", ""), "emptcp-heartbeat-v1");
  EXPECT_DOUBLE_EQ(analysis::json_num(*flat, "cells_total", -1.0), 4.0);
  EXPECT_DOUBLE_EQ(analysis::json_num(*flat, "cells_done", -1.0), 4.0);
  EXPECT_GE(analysis::json_num(*flat, "wall_s", -1.0), 0.0);

  // Every deterministic artifact is byte-identical to the quiet run; the
  // wall-clock sidecar is the only extra file.
  auto quiet = snapshot(plain_dir);
  auto noisy = snapshot(hb_dir);
  EXPECT_EQ(noisy.count("heartbeat.jsonl"), 1u);
  noisy.erase("heartbeat.jsonl");
  EXPECT_EQ(quiet, noisy);
}

TEST_F(CampaignRunnerTest, WorkerCountDoesNotChangeArtifacts) {
  const fs::path seq_dir = fresh_dir("seq");
  const fs::path par_dir = fresh_dir("par");
  CampaignRunner seq(tiny_spec(), seq_dir.string());
  CampaignRunner par(tiny_spec(), par_dir.string());
  ASSERT_EQ(seq.run(1).ran, 4u);
  ASSERT_EQ(par.run(4).ran, 4u);
  // Manifests, traces and the final ledger are all byte-identical:
  // campaign output is a pure function of (spec, out grid), independent
  // of scheduling.
  EXPECT_EQ(snapshot(seq_dir), snapshot(par_dir));
}

}  // namespace
}  // namespace emptcp::campaign
