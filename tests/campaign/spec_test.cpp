// Campaign spec parsing: key=value and JSON forms, loud failure on typos,
// and the per-cell seed derivation.
#include "campaign/spec.hpp"

#include <gtest/gtest.h>

#include <set>

#include "campaign/runner.hpp"

namespace emptcp::campaign {
namespace {

TEST(CampaignSpecTest, ParsesKeyValueForm) {
  const char* text =
      "# comment\n"
      "name          = sweep\n"
      "protocols     = emptcp, mptcp\n"
      "fleet_sizes   = 4, 16\n"
      "seeds         = 1, 2, 3\n"
      "mode          = open\n"
      "flows_per_client = 2\n"
      "size.kind     = lognormal\n"
      "size.log_mu   = 13.25\n"
      "arrival.kind  = poisson\n"
      "arrival.rate_per_s = 8\n"
      "scenario.wifi.down_mbps = 12.5\n"
      "scenario.cell.rtt_ms    = 70\n";
  CampaignSpec spec;
  std::string err;
  ASSERT_TRUE(parse_campaign_spec(text, spec, err)) << err;
  EXPECT_EQ(spec.name, "sweep");
  ASSERT_EQ(spec.protocols.size(), 2u);
  EXPECT_EQ(spec.protocols[0], app::Protocol::kEmptcp);
  EXPECT_EQ(spec.protocols[1], app::Protocol::kMptcp);
  EXPECT_EQ(spec.fleet_sizes, (std::vector<std::size_t>{4, 16}));
  EXPECT_EQ(spec.seeds, (std::vector<std::uint64_t>{1, 2, 3}));
  EXPECT_EQ(spec.cell_count(), 12u);
  EXPECT_EQ(spec.workload.mode, workload::FleetConfig::Mode::kOpen);
  EXPECT_EQ(spec.workload.flows_per_client, 2u);
  EXPECT_EQ(spec.workload.flow_size.kind,
            workload::SizeDist::Kind::kLognormal);
  EXPECT_DOUBLE_EQ(spec.workload.flow_size.log_mu, 13.25);
  EXPECT_DOUBLE_EQ(spec.workload.arrival.rate_per_s, 8.0);
  EXPECT_DOUBLE_EQ(spec.workload.scenario.wifi.down_mbps, 12.5);
  EXPECT_EQ(spec.workload.scenario.cell.rtt, sim::milliseconds(70));
  // Campaign artifacts require traces; the parser forces this on.
  EXPECT_TRUE(spec.workload.scenario.trace);
}

TEST(CampaignSpecTest, JsonAndKeyValueAgree) {
  const char* kv =
      "name = j\n"
      "protocols = emptcp, tcp-wifi\n"
      "fleet_sizes = 2\n"
      "seeds = 7\n";
  const char* json =
      "{\"name\": \"j\", \"protocols\": [\"emptcp\", \"tcp-wifi\"],"
      " \"fleet_sizes\": [2], \"seeds\": [7]}";
  CampaignSpec a;
  CampaignSpec b;
  std::string err;
  ASSERT_TRUE(parse_campaign_spec(kv, a, err)) << err;
  ASSERT_TRUE(parse_campaign_spec(json, b, err)) << err;
  EXPECT_EQ(a.protocols, b.protocols);
  EXPECT_EQ(a.fleet_sizes, b.fleet_sizes);
  EXPECT_EQ(a.seeds, b.seeds);
}

TEST(CampaignSpecTest, RejectsUnknownAndInvalid) {
  CampaignSpec spec;
  std::string err;
  EXPECT_FALSE(parse_campaign_spec("bogus_knob = 1\n", spec, err));
  EXPECT_NE(err.find("bogus_knob"), std::string::npos);

  EXPECT_FALSE(parse_campaign_spec(
      "protocols = warp-drive\nfleet_sizes = 1\nseeds = 1\n", spec, err));

  // Missing grid axes fail loudly.
  EXPECT_FALSE(parse_campaign_spec("protocols = emptcp\nseeds = 1\n", spec,
                                   err));
  EXPECT_NE(err.find("fleet_sizes"), std::string::npos);

  EXPECT_FALSE(parse_campaign_spec(
      "protocols = emptcp\nfleet_sizes = 0\nseeds = 1\n", spec, err));
}

TEST(CampaignSpecTest, ParsesAndValidatesShardingKeys) {
  const char* text =
      "name = sh\n"
      "protocols = emptcp\n"
      "fleet_sizes = 8\n"
      "seeds = 1\n"
      "sharding.clients_per_cell = 2\n"
      "sharding.shards = 4\n"
      "sharding.cross_every = 2\n"
      "sharding.backbone_mbps = 400\n"
      "sharding.backbone_delay_ms = 5\n";
  CampaignSpec spec;
  std::string err;
  ASSERT_TRUE(parse_campaign_spec(text, spec, err)) << err;
  EXPECT_EQ(spec.workload.sharding.clients_per_cell, 2u);
  EXPECT_EQ(spec.workload.sharding.shards, 4u);
  EXPECT_EQ(spec.workload.sharding.cross_every, 2u);
  EXPECT_DOUBLE_EQ(spec.workload.sharding.backbone_mbps, 400.0);
  EXPECT_EQ(spec.workload.sharding.backbone_delay, sim::milliseconds(5));
  EXPECT_EQ(spec.workload.cell_count(), 4u);

  // Zero backbone delay would collapse the conservative lookahead window;
  // the parser refuses before any fleet gets built.
  EXPECT_FALSE(parse_campaign_spec(
      "name = sh\nprotocols = emptcp\nfleet_sizes = 8\nseeds = 1\n"
      "sharding.backbone_delay_ms = 0\n",
      spec, err));
  EXPECT_NE(err.find("backbone_delay_ms"), std::string::npos);
  EXPECT_FALSE(parse_campaign_spec(
      "name = sh\nprotocols = emptcp\nfleet_sizes = 8\nseeds = 1\n"
      "sharding.backbone_mbps = -1\n",
      spec, err));
  EXPECT_NE(err.find("backbone_mbps"), std::string::npos);
}

TEST(CampaignSpecTest, SeedDerivationIsStableAndDecorrelated) {
  const std::uint64_t s1 =
      derive_cell_seed("camp", app::Protocol::kEmptcp, 4, 1);
  EXPECT_EQ(s1, derive_cell_seed("camp", app::Protocol::kEmptcp, 4, 1));
  EXPECT_NE(s1, 0u);

  // Every cell of a 3-protocol x 2-fleet x 3-seed grid gets a distinct
  // simulation seed.
  std::set<std::uint64_t> derived;
  for (const app::Protocol p : {app::Protocol::kEmptcp, app::Protocol::kMptcp,
                                app::Protocol::kTcpWifi}) {
    for (const std::size_t fleet : {4u, 16u}) {
      for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        derived.insert(derive_cell_seed("camp", p, fleet, seed));
      }
    }
  }
  EXPECT_EQ(derived.size(), 18u);
}

TEST(CampaignSpecTest, ProtocolSlugsRoundTrip) {
  for (const app::Protocol p :
       {app::Protocol::kTcpWifi, app::Protocol::kTcpLte, app::Protocol::kMptcp,
        app::Protocol::kEmptcp, app::Protocol::kWifiFirst,
        app::Protocol::kMdp}) {
    const auto back = app::protocol_from_string(protocol_slug(p));
    ASSERT_TRUE(back.has_value()) << protocol_slug(p);
    EXPECT_EQ(*back, p);
  }
}

}  // namespace
}  // namespace emptcp::campaign
