#include "analysis/report.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "analysis/manifest.hpp"
#include "analysis/rollup.hpp"

namespace emptcp::analysis {
namespace {

// A tiny hand-written trace exercising every rollup path: scheduler picks
// on two interfaces, a suspend/resume pair, energy samples, a warning and
// the run.* gauge snapshot.
constexpr const char* kTraceJsonl =
    R"({"t_ns":1000000,"kind":"sched_pick","subflow":1,"iface":"wifi","data_seq":0,"len":1400}
{"t_ns":2000000,"kind":"sched_pick","subflow":2,"iface":"cell","data_seq":1400,"len":600}
{"t_ns":3000000,"kind":"sched_pick","subflow":1,"iface":"wifi","data_seq":2000,"len":600}
{"t_ns":4000000,"kind":"mp_prio","subflow":2,"iface":"cell","backup":true,"origin":"sender"}
{"t_ns":5000000,"kind":"mp_prio","subflow":2,"iface":"cell","backup":false,"origin":"sender"}
{"t_ns":6000000,"kind":"mode_change","from":"all-paths","to":"wifi-only","wifi_mbps":20,"cell_mbps":5}
{"t_ns":7000000,"kind":"radio_state","iface":"cell","state":"IDLE"}
{"t_ns":1000000000,"kind":"energy_sample","iface":"wifi","mbps":10,"power_mw":500}
{"t_ns":2000000000,"kind":"energy_sample","iface":"wifi","mbps":12,"power_mw":700}
{"t_ns":8000000,"kind":"warning","what":"test","v0":1,"v1":2}
{"metric":"run.completed","value":1}
{"metric":"run.download_time_s","value":2}
{"metric":"run.energy_j","value":1.25}
{"metric":"run.wifi_j","value":1}
{"metric":"run.cell_j","value":0.25}
{"metric":"run.bytes_received","value":2600}
{"metric":"tcp.retransmits","value":3}
)";

RunManifest test_manifest(const std::string& group, const std::string& proto,
                          std::uint64_t seed) {
  RunManifest m;
  m.group = group;
  m.protocol = proto;
  m.seed = seed;
  m.workload = "unit-test";
  m.trace_digest = fnv1a64_hex(kTraceJsonl);
  return m;
}

TEST(RollupTest, ParseTraceSeparatesEventsFromMetrics) {
  TraceData t;
  ASSERT_TRUE(parse_trace_jsonl(kTraceJsonl, t));
  EXPECT_EQ(t.events.size(), 10u);
  EXPECT_EQ(t.metrics.size(), 7u);
  EXPECT_DOUBLE_EQ(t.metric("run.energy_j", 0.0), 1.25);
  EXPECT_DOUBLE_EQ(t.metric("missing", -1.0), -1.0);
}

TEST(RollupTest, MalformedLineReportsLineNumber) {
  TraceData t;
  std::string err;
  EXPECT_FALSE(parse_trace_jsonl("{\"t_ns\":1}\n{broken\n", t, &err));
  EXPECT_NE(err.find("line 2"), std::string::npos);
}

TEST(RollupTest, RollupComputesPaperMetrics) {
  TraceData t;
  ASSERT_TRUE(parse_trace_jsonl(kTraceJsonl, t));
  const RunRollup r = rollup_run(test_manifest("g", "emptcp", 1), t);
  EXPECT_TRUE(r.completed);
  EXPECT_DOUBLE_EQ(r.time_s, 2.0);
  EXPECT_DOUBLE_EQ(r.energy_j, 1.25);
  EXPECT_EQ(r.bytes, 2600u);
  EXPECT_EQ(r.sched_picks, 3u);
  EXPECT_EQ(r.suspends, 1u);
  EXPECT_EQ(r.resumes, 1u);
  EXPECT_EQ(r.mode_changes, 1u);
  EXPECT_EQ(r.radio_transitions, 1u);
  EXPECT_EQ(r.warnings, 1u);
  EXPECT_EQ(r.events, 10u);
  EXPECT_EQ(r.retransmits, 3u);
  // wifi got 2000 of 2600 scheduled bytes.
  EXPECT_DOUBLE_EQ(r.iface_share("wifi"), 2000.0 / 2600.0);
  EXPECT_DOUBLE_EQ(r.iface_share("cell"), 600.0 / 2600.0);
  // Energy per bit: 1.25 J over 2600*8 bits -> µJ/bit.
  EXPECT_DOUBLE_EQ(r.energy_per_bit_uj(), 1.25e6 / (2600.0 * 8.0));
  // Integration: wifi sample at t=1s integrates from 0 (500 mW * 1 s) plus
  // the 700 mW window ending at t=2s.
  EXPECT_DOUBLE_EQ(r.integrated_energy_j, 0.5 + 0.7);
}

TEST(RollupTest, StreamingBuilderMatchesBatchRollup) {
  // Folding the trace line-by-line through add_line (the emptcp-report
  // streaming path) must agree exactly with the materialized rollup.
  TraceData t;
  ASSERT_TRUE(parse_trace_jsonl(kTraceJsonl, t));
  const RunManifest m = test_manifest("g", "emptcp", 1);
  const RunRollup batch = rollup_run(m, t);

  RollupBuilder b(m);
  std::string_view text = kTraceJsonl;
  std::size_t pos = 0;
  while (pos < text.size()) {
    std::size_t nl = text.find('\n', pos);
    if (nl == std::string_view::npos) nl = text.size();
    const auto doc = parse_json_flat(text.substr(pos, nl - pos));
    ASSERT_TRUE(doc.has_value());
    b.add_line(*doc);
    pos = nl + 1;
  }
  const RunRollup streamed = b.finish();
  EXPECT_EQ(streamed.events, batch.events);
  EXPECT_EQ(streamed.sched_picks, batch.sched_picks);
  EXPECT_EQ(streamed.sched_bytes_by_iface, batch.sched_bytes_by_iface);
  EXPECT_EQ(streamed.suspends, batch.suspends);
  EXPECT_DOUBLE_EQ(streamed.energy_j, batch.energy_j);
  EXPECT_DOUBLE_EQ(streamed.integrated_energy_j, batch.integrated_energy_j);
  EXPECT_EQ(streamed.bytes, batch.bytes);
  EXPECT_EQ(streamed.retransmits, batch.retransmits);
  // The single pass also produced the power-timeline windows.
  EXPECT_GT(b.power().count(), 0u);
}

TEST(ManifestStreamTest, ChunkedDigestMatchesWholeString) {
  const std::string text(kTraceJsonl);
  Fnv1a64Stream s;
  // Deliberately awkward chunking: 7-byte pieces.
  for (std::size_t i = 0; i < text.size(); i += 7) {
    s.update(std::string_view(text).substr(i, 7));
  }
  EXPECT_EQ(s.value(), fnv1a64(text));
  EXPECT_EQ(s.hex(), fnv1a64_hex(text));
}

TEST(ReportTest, RenderIsDeterministicAndOrderIndependent) {
  TraceData t;
  ASSERT_TRUE(parse_trace_jsonl(kTraceJsonl, t));
  LoadedRun a{test_manifest("g", "emptcp", 1), t, true, "a"};
  LoadedRun b{test_manifest("g", "emptcp", 2), t, true, "b"};
  LoadedRun c{test_manifest("g", "mptcp", 1), t, true, "c"};
  const std::string fwd = render_report({a, b, c});
  const std::string rev = render_report({c, b, a});
  EXPECT_EQ(fwd, rev);
  EXPECT_NE(fwd.find("== runs =="), std::string::npos);
  EXPECT_NE(fwd.find("== energy per bit =="), std::string::npos);
  EXPECT_NE(fwd.find("== quantiles"), std::string::npos);
  EXPECT_NE(fwd.find("== integrity =="), std::string::npos);
}

TEST(ReportTest, DigestMismatchSurfacesInIntegritySection) {
  TraceData t;
  ASSERT_TRUE(parse_trace_jsonl(kTraceJsonl, t));
  LoadedRun bad{test_manifest("g", "emptcp", 1), t, false, "stale.json"};
  const std::string report = render_report({bad});
  EXPECT_NE(report.find("DIGEST MISMATCH"), std::string::npos);
  EXPECT_NE(report.find("stale.json"), std::string::npos);
}

TEST(DiffTest, GlobMatchSemantics) {
  EXPECT_TRUE(glob_match("*", "anything"));
  EXPECT_TRUE(glob_match("scheduler.*", "scheduler.ns_per_op"));
  EXPECT_FALSE(glob_match("scheduler.*", "packet.ns_per_op"));
  EXPECT_TRUE(glob_match("*alloc*", "end_to_end.allocs_per_op"));
  EXPECT_TRUE(glob_match("a*b*c", "a-x-b-y-c"));
  EXPECT_FALSE(glob_match("a*b*c", "a-x-b-y"));
  EXPECT_TRUE(glob_match("exact", "exact"));
  EXPECT_FALSE(glob_match("exact", "exact-no"));
  EXPECT_TRUE(glob_match("", ""));
}

TEST(DiffTest, ParseToleranceSpecs) {
  ToleranceRule r;
  ASSERT_TRUE(parse_tolerance("*alloc*=abs:0.5", r));
  EXPECT_EQ(r.pattern, "*alloc*");
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kMaxAbs);
  EXPECT_DOUBLE_EQ(r.tol, 0.5);
  ASSERT_TRUE(parse_tolerance("x=factor:2", r));
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kMaxFactor);
  ASSERT_TRUE(parse_tolerance("x=min:1.5", r));
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kMinFactor);
  ASSERT_TRUE(parse_tolerance("x=ignore", r));
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kIgnore);
  ASSERT_TRUE(parse_tolerance("x=exact", r));
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kExact);
  EXPECT_FALSE(parse_tolerance("missing-equals", r));
  EXPECT_FALSE(parse_tolerance("x=unknown:1", r));
  EXPECT_FALSE(parse_tolerance("x=factor:0.5", r));  // factor < 1 is nonsense
  EXPECT_FALSE(parse_tolerance("x=abs:-1", r));
}

FlatJson doc(const char* json) {
  auto d = parse_json_flat(json);
  EXPECT_TRUE(d.has_value());
  return d.value_or(FlatJson{});
}

TEST(DiffTest, InjectedRegressionViolates) {
  const FlatJson base = doc(R"({"scheduler":{"ns_per_op":100},"schema":"v1"})");
  const FlatJson good = doc(R"({"scheduler":{"ns_per_op":120},"schema":"v1"})");
  const FlatJson bad = doc(R"({"scheduler":{"ns_per_op":900},"schema":"v1"})");
  const std::vector<ToleranceRule> rules{
      {"schema", ToleranceRule::Mode::kExact, 0.0},
      {"*ns_per*", ToleranceRule::Mode::kMaxFactor, 5.0},
      {"*", ToleranceRule::Mode::kIgnore, 0.0},
  };
  EXPECT_EQ(diff_metrics(base, good, rules).violations, 0);
  const DiffResult r = diff_metrics(base, bad, rules);
  EXPECT_EQ(r.violations, 1);
  EXPECT_NE(r.render().find("FAIL"), std::string::npos);
  EXPECT_NE(r.render().find("1 violation"), std::string::npos);
}

TEST(DiffTest, ExactRuleCatchesSchemaDrift) {
  const FlatJson base = doc(R"({"schema":"v1"})");
  const FlatJson cur = doc(R"({"schema":"v2"})");
  const std::vector<ToleranceRule> rules{
      {"schema", ToleranceRule::Mode::kExact, 0.0}};
  EXPECT_EQ(diff_metrics(base, cur, rules).violations, 1);
  EXPECT_EQ(diff_metrics(base, base, rules).violations, 0);
}

TEST(DiffTest, MissingAndNewKeys) {
  const FlatJson base = doc(R"({"a":1,"b":2})");
  const FlatJson cur = doc(R"({"a":1,"c":3})");
  const std::vector<ToleranceRule> rules{
      {"*", ToleranceRule::Mode::kMaxAbs, 10.0}};
  const DiffResult r = diff_metrics(base, cur, rules);
  // "b" vanished (violation under a non-ignore rule); "c" is new (not one).
  EXPECT_EQ(r.violations, 1);
  bool saw_new = false;
  for (const auto& row : r.rows) {
    if (row.key == "c") {
      saw_new = true;
      EXPECT_EQ(row.verdict, "new");
      EXPECT_FALSE(row.violation);
    }
  }
  EXPECT_TRUE(saw_new);
  // Under an all-ignore ruleset the vanished key is fine too.
  const std::vector<ToleranceRule> ignore{
      {"*", ToleranceRule::Mode::kIgnore, 0.0}};
  EXPECT_EQ(diff_metrics(base, cur, ignore).violations, 0);
}

TEST(DiffTest, MinFactorGuardsThroughputDrops) {
  const FlatJson base = doc(R"({"events_per_sec":1000000})");
  const FlatJson slow = doc(R"({"events_per_sec":100000})");
  const std::vector<ToleranceRule> rules{
      {"*per_sec*", ToleranceRule::Mode::kMinFactor, 5.0}};
  EXPECT_EQ(diff_metrics(base, slow, rules).violations, 1);
  const FlatJson ok = doc(R"({"events_per_sec":500000})");
  EXPECT_EQ(diff_metrics(base, ok, rules).violations, 0);
}

TEST(DiffTest, FloorIsAbsoluteRegardlessOfBaseline) {
  ToleranceRule r;
  ASSERT_TRUE(parse_tolerance("*hybrid*.speedup_vs_packet=floor:2", r));
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kFloor);
  EXPECT_DOUBLE_EQ(r.tol, 2.0);

  // The floor binds against the configured value, not the baseline: a
  // baseline that itself regressed below the floor must not grandfather
  // the current run in.
  const FlatJson base = doc(R"({"speedup_vs_packet":1.2})");
  const FlatJson below = doc(R"({"speedup_vs_packet":1.9})");
  const FlatJson above = doc(R"({"speedup_vs_packet":2.1})");
  const std::vector<ToleranceRule> rules{
      {"*", ToleranceRule::Mode::kFloor, 2.0}};
  EXPECT_EQ(diff_metrics(base, below, rules).violations, 1);
  EXPECT_EQ(diff_metrics(base, above, rules).violations, 0);
}

TEST(DiffTest, NearBandCombinesRelativeAndAbsoluteTerms) {
  ToleranceRule r;
  ASSERT_TRUE(parse_tolerance("*.fct_s=near:0.25,0.25", r));
  EXPECT_EQ(r.mode, ToleranceRule::Mode::kNear);
  EXPECT_DOUBLE_EQ(r.tol, 0.25);
  EXPECT_DOUBLE_EQ(r.tol_abs, 0.25);
  // Both terms are mandatory and non-negative ("near:REL,ABS").
  EXPECT_FALSE(parse_tolerance("x=near:0.1", r));
  EXPECT_FALSE(parse_tolerance("x=near:-0.1,0.1", r));
  EXPECT_FALSE(parse_tolerance("x=near:0.1,-0.1", r));

  // Band: |current - baseline| <= rel*|baseline| + abs. For baseline 10,
  // rel 0.25, abs 0.25 the band is ±2.75 — symmetric, unlike abs/factor.
  const FlatJson base = doc(R"({"fct_s":10})");
  const std::vector<ToleranceRule> rules{
      {"*", ToleranceRule::Mode::kNear, 0.25, 0.25}};
  EXPECT_EQ(diff_metrics(base, doc(R"({"fct_s":12.7})"), rules).violations, 0);
  EXPECT_EQ(diff_metrics(base, doc(R"({"fct_s":7.3})"), rules).violations, 0);
  EXPECT_EQ(diff_metrics(base, doc(R"({"fct_s":12.8})"), rules).violations, 1);
  EXPECT_EQ(diff_metrics(base, doc(R"({"fct_s":7.2})"), rules).violations, 1);
  // A zero baseline still admits the absolute term (FCTs of 0 never
  // happen, but energies on an unused interface do).
  const FlatJson zero = doc(R"({"fct_s":0})");
  EXPECT_EQ(diff_metrics(zero, doc(R"({"fct_s":0.2})"), rules).violations, 0);
  EXPECT_EQ(diff_metrics(zero, doc(R"({"fct_s":0.3})"), rules).violations, 1);
}

TEST(ReportTest, RollupFlatJsonKeysAndFlows) {
  // Two runs, deliberately given out of sorted order, with '/' in the
  // workload and out-of-order flow completions.
  AnalyzedRun b;
  b.rollup.group = "hybrid_smoke";
  b.rollup.protocol = "mptcp";
  b.rollup.workload = "fleet/closed/c4";
  b.rollup.seed = 2;
  b.rollup.completed = true;
  b.rollup.time_s = 3.5;
  b.rollup.energy_j = 7.25;
  b.rollup.bytes = 8000;
  b.rollup.flows_started = 2;
  b.rollup.flows_completed = 2;
  b.rollup.flows = {{7, 4000.0, 1.5, 3.0}, {3, 4000.0, 2.0, 4.25}};
  AnalyzedRun a;
  a.rollup.group = "hybrid_smoke";
  a.rollup.protocol = "emptcp";
  a.rollup.workload = "fleet/closed/c1";
  a.rollup.seed = 1;
  a.rollup.completed = true;

  const std::string json = rollup_flat_json({b, a});
  const FlatJson flat = doc(json.c_str());

  // Keys carry group-protocol-workload-seed, '/' sanitized to '-', so
  // fleet sizes don't collide and globs can target a workload slice.
  EXPECT_NE(json.find("\"emptcp-rollup-flat-v1\""), std::string::npos);
  const std::string kb = "hybrid_smoke-mptcp-fleet-closed-c4-s2";
  EXPECT_DOUBLE_EQ(json_num(flat, kb + ".time_s", -1.0), 3.5);
  EXPECT_DOUBLE_EQ(json_num(flat, kb + ".bytes", -1.0), 8000.0);
  EXPECT_DOUBLE_EQ(json_num(flat, kb + ".flows_completed", -1.0), 2.0);
  // Flow triples are keyed by flow id and emitted in ascending id order,
  // not completion order — the two fidelities complete flows in different
  // orders, and the gate must compare a flow with itself.
  EXPECT_DOUBLE_EQ(json_num(flat, kb + ".flow3.fct_s", -1.0), 2.0);
  EXPECT_DOUBLE_EQ(json_num(flat, kb + ".flow3.energy_j", -1.0), 4.25);
  EXPECT_DOUBLE_EQ(json_num(flat, kb + ".flow7.fct_s", -1.0), 1.5);
  EXPECT_LT(json.find(kb + ".flow3."), json.find(kb + ".flow7."));
  // Runs are sorted: the emptcp/c1 run serializes first.
  EXPECT_LT(json.find("hybrid_smoke-emptcp-fleet-closed-c1-s1"),
            json.find(kb));
  // The sorted flat documents diff cleanly against themselves.
  const std::vector<ToleranceRule> rules{
      {"*", ToleranceRule::Mode::kExact, 0.0}};
  EXPECT_EQ(diff_metrics(flat, flat, rules).violations, 0);
}

TEST(DiffTest, DefaultBenchTolerancesEndInCatchAll) {
  const std::vector<ToleranceRule> rules = default_bench_tolerances();
  ASSERT_FALSE(rules.empty());
  EXPECT_EQ(rules.back().pattern, "*");
  EXPECT_EQ(rules.back().mode, ToleranceRule::Mode::kIgnore);
  // The canonical BENCH_core.json keys all find a rule.
  for (const char* key :
       {"schema", "scheduler.ns_per_op", "end_to_end.allocs_per_op",
        "self_profile.e2e_events_per_sec", "packet_path.wall_seconds"}) {
    bool matched = false;
    for (const auto& r : rules) {
      if (glob_match(r.pattern, key)) {
        matched = true;
        break;
      }
    }
    EXPECT_TRUE(matched) << key;
  }
}

}  // namespace
}  // namespace emptcp::analysis
