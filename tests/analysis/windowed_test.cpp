#include "analysis/windowed.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace emptcp::analysis {
namespace {

TEST(WindowedAggregatorTest, RejectsNonPositiveInterval) {
  EXPECT_THROW(WindowedAggregator(0.0), std::invalid_argument);
  EXPECT_THROW(WindowedAggregator(-1.0), std::invalid_argument);
}

TEST(WindowedAggregatorTest, EmptyAggregatorHasNoWindows) {
  WindowedAggregator agg(1.0);
  EXPECT_EQ(agg.count(), 0u);
  EXPECT_TRUE(agg.windows().empty());
}

TEST(WindowedAggregatorTest, FoldsSamplesIntoCorrectWindows) {
  WindowedAggregator agg(10.0);
  agg.add(1.0, 100.0);
  agg.add(2.0, 200.0);
  agg.add(15.0, 50.0);
  const auto& ws = agg.windows();
  ASSERT_EQ(ws.size(), 2u);
  EXPECT_DOUBLE_EQ(ws[0].start_s, 0.0);
  EXPECT_EQ(ws[0].count, 2u);
  EXPECT_DOUBLE_EQ(ws[0].mean(), 150.0);
  EXPECT_DOUBLE_EQ(ws[0].min, 100.0);
  EXPECT_DOUBLE_EQ(ws[0].max, 200.0);
  EXPECT_DOUBLE_EQ(ws[1].start_s, 10.0);
  EXPECT_EQ(ws[1].count, 1u);
  EXPECT_DOUBLE_EQ(agg.rate(ws[0]), 0.2);  // 2 events / 10 s
}

TEST(WindowedAggregatorTest, GapsAppearAsZeroCountWindows) {
  WindowedAggregator agg(1.0);
  agg.add(0.5, 1.0);
  agg.add(3.5, 2.0);
  const auto& ws = agg.windows();
  ASSERT_EQ(ws.size(), 4u);
  EXPECT_EQ(ws[1].count, 0u);
  EXPECT_EQ(ws[2].count, 0u);
  EXPECT_DOUBLE_EQ(ws[1].mean(), 0.0);  // empty window: mean is defined 0
}

TEST(WindowedAggregatorTest, OutOfOrderSamplesPrependWindows) {
  WindowedAggregator agg(1.0);
  agg.add(5.2, 10.0);
  agg.add(1.7, 20.0);  // earlier than anything seen: layout must extend left
  const auto& ws = agg.windows();
  ASSERT_EQ(ws.size(), 5u);
  EXPECT_DOUBLE_EQ(ws.front().start_s, 1.0);
  EXPECT_EQ(ws.front().count, 1u);
  EXPECT_DOUBLE_EQ(ws.front().sum, 20.0);
  EXPECT_EQ(ws.back().count, 1u);
  EXPECT_DOUBLE_EQ(ws.back().sum, 10.0);
  EXPECT_EQ(agg.count(), 2u);
}

TEST(WindowedAggregatorTest, NegativeTimesSupported) {
  WindowedAggregator agg(2.0);
  agg.add(-3.0, 1.0);
  agg.add(1.0, 2.0);
  const auto& ws = agg.windows();
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_DOUBLE_EQ(ws.front().start_s, -4.0);
  EXPECT_EQ(ws.front().count, 1u);
  EXPECT_EQ(ws.back().count, 1u);
}

}  // namespace
}  // namespace emptcp::analysis
