#include "analysis/json.hpp"

#include <gtest/gtest.h>

#include "analysis/manifest.hpp"

namespace emptcp::analysis {
namespace {

TEST(JsonFlatTest, FlattensNestedObjectsWithDottedPaths) {
  const auto doc = parse_json_flat(R"({"a":{"b":1,"c":"x"},"d":true})");
  ASSERT_TRUE(doc.has_value());
  ASSERT_EQ(doc->size(), 3u);
  EXPECT_EQ((*doc)[0].first, "a.b");
  EXPECT_DOUBLE_EQ((*doc)[0].second.num, 1.0);
  EXPECT_EQ((*doc)[1].first, "a.c");
  EXPECT_EQ((*doc)[1].second.str, "x");
  EXPECT_EQ((*doc)[2].first, "d");
  EXPECT_TRUE((*doc)[2].second.boolean);
}

TEST(JsonFlatTest, ArraysFlattenWithNumericSegments) {
  const auto doc = parse_json_flat(R"({"xs":[10,20],"m":{"ys":[true]}})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_DOUBLE_EQ(json_num(*doc, "xs.0", -1), 10.0);
  EXPECT_DOUBLE_EQ(json_num(*doc, "xs.1", -1), 20.0);
  EXPECT_DOUBLE_EQ(json_num(*doc, "m.ys.0", -1), 1.0);  // bool widens
}

TEST(JsonFlatTest, StringEscapes) {
  const auto doc =
      parse_json_flat(R"({"s":"quote \" slash \\ nl \n u A"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(json_str(*doc, "s"), "quote \" slash \\ nl \n u A");
}

TEST(JsonFlatTest, ScalarsAndEmptyContainers) {
  EXPECT_TRUE(parse_json_flat("{}").has_value());
  EXPECT_TRUE(parse_json_flat("[]").has_value());
  const auto n = parse_json_flat("-12.5e2");
  ASSERT_TRUE(n.has_value());
  EXPECT_DOUBLE_EQ(json_num(*n, "", 0), -1250.0);
  const auto nul = parse_json_flat("null");
  ASSERT_TRUE(nul.has_value());
  EXPECT_EQ((*nul)[0].second.type, JsonScalar::Type::kNull);
}

TEST(JsonFlatTest, MalformedInputsFailWithOffset) {
  std::string err;
  EXPECT_FALSE(parse_json_flat("{\"a\":}", &err).has_value());
  EXPECT_NE(err.find("offset"), std::string::npos);
  EXPECT_FALSE(parse_json_flat("{\"a\":1", &err).has_value());
  EXPECT_FALSE(parse_json_flat("\"unterminated", &err).has_value());
  EXPECT_FALSE(parse_json_flat("{\"a\":1}trailing", &err).has_value());
  EXPECT_FALSE(parse_json_flat("", &err).has_value());
  EXPECT_FALSE(parse_json_flat("{1:2}", &err).has_value());
}

TEST(JsonFlatTest, LookupHelpersFallBack) {
  const auto doc = parse_json_flat(R"({"a":1,"s":"x"})");
  ASSERT_TRUE(doc.has_value());
  EXPECT_EQ(json_find(*doc, "missing"), nullptr);
  EXPECT_DOUBLE_EQ(json_num(*doc, "missing", 42.0), 42.0);
  EXPECT_DOUBLE_EQ(json_num(*doc, "s", 42.0), 42.0);  // wrong type
  EXPECT_EQ(json_str(*doc, "missing", "fb"), "fb");
}

TEST(ManifestTest, Fnv1a64MatchesReferenceVectors) {
  // Published FNV-1a test vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8CULL);
  EXPECT_EQ(fnv1a64_hex(""), "fnv1a64:cbf29ce484222325");
}

TEST(ManifestTest, JsonRoundTripPreservesEveryField) {
  RunManifest m;
  m.group = "fig10-n2";
  m.protocol = "emptcp";
  m.seed = 17;
  m.workload = "download-268435456B";
  m.trace_file = "fig10-n2-emptcp-s17.jsonl";
  m.trace_events = 12345;
  m.trace_digest = fnv1a64_hex("trace body");
  m.params = {{"wifi.down_mbps", "20"},
              {"cell_tech", "\"LTE\""},
              {"mobility", "false"}};

  const std::string json = manifest_to_json(m);
  const auto doc = parse_json_flat(json);
  ASSERT_TRUE(doc.has_value());
  RunManifest back;
  ASSERT_TRUE(manifest_from_json(*doc, back));
  EXPECT_EQ(back.group, m.group);
  EXPECT_EQ(back.protocol, m.protocol);
  EXPECT_EQ(back.seed, m.seed);
  EXPECT_EQ(back.workload, m.workload);
  EXPECT_EQ(back.trace_file, m.trace_file);
  EXPECT_EQ(back.trace_events, m.trace_events);
  EXPECT_EQ(back.trace_digest, m.trace_digest);
  EXPECT_EQ(back.params, m.params);
}

TEST(ManifestTest, FromJsonRejectsUnknownSchema) {
  const auto doc = parse_json_flat(R"({"schema":"something-else"})");
  ASSERT_TRUE(doc.has_value());
  RunManifest out;
  EXPECT_FALSE(manifest_from_json(*doc, out));
}

TEST(ManifestTest, SerializationIsDeterministic) {
  RunManifest m;
  m.group = "g";
  m.protocol = "mptcp";
  m.params = {{"k", "1"}};
  EXPECT_EQ(manifest_to_json(m), manifest_to_json(m));
}

}  // namespace
}  // namespace emptcp::analysis
