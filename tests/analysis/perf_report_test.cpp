// PerfDoc serialization round-trip, report rendering, LogBuckets
// summaries, and the structural Chrome-trace validator.
#include "analysis/perf_report.hpp"

#include <gtest/gtest.h>

#include <string>

#include "analysis/json.hpp"

namespace emptcp::analysis {
namespace {

PerfDoc sample_doc() {
  PerfDoc doc;
  doc.label = "unit-f64-s1";
  doc.epochs = 100;
  doc.busy_epochs = 90;
  doc.cross_messages = 42;
  doc.min_lookahead_ns = 1e7;
  doc.lookahead_utilization = 1.5;
  runtime::LogBuckets ev;
  for (int i = 0; i < 100; ++i) ev.add(static_cast<std::uint64_t>(i));
  doc.events_per_epoch = summarize(ev);
  doc.advance_ns_per_epoch = summarize(ev);
  doc.cross_per_epoch = summarize(ev);
  doc.imbalance_pct = summarize(ev);
  doc.places.push_back({"cell0", 1000, 90, 21, 0.5});
  doc.places.push_back({"cell1", 900, 85, 21, 0.4});
  doc.parties.push_back({0.8, 0.1});
  doc.spans.push_back({"exec cell0", 90, 0.5, 12.25});
  doc.spans_dropped = 3;
  return doc;
}

TEST(PerfReportTest, SummarizeReportsQuantileUpperBounds) {
  runtime::LogBuckets h;
  for (int i = 0; i < 100; ++i) h.add(10);
  h.add(5000);
  const PerfDist d = summarize(h);
  EXPECT_EQ(d.count, 101u);
  EXPECT_EQ(d.p50, 15u);  // bucket [8, 15]
  EXPECT_EQ(d.p90, 15u);
  EXPECT_EQ(d.max, 5000u);
  EXPECT_NEAR(d.mean, (100.0 * 10 + 5000) / 101.0, 1e-9);
}

TEST(PerfReportTest, JsonRoundTripPreservesEverything) {
  const PerfDoc doc = sample_doc();
  const std::string json = perf_doc_to_json(doc);

  std::string err;
  const auto flat = parse_json_flat(json, &err);
  ASSERT_TRUE(flat) << err;
  PerfDoc back;
  ASSERT_TRUE(perf_doc_from_flat(*flat, back, &err)) << err;

  EXPECT_EQ(back.label, doc.label);
  EXPECT_EQ(back.epochs, doc.epochs);
  EXPECT_EQ(back.busy_epochs, doc.busy_epochs);
  EXPECT_EQ(back.cross_messages, doc.cross_messages);
  EXPECT_DOUBLE_EQ(back.min_lookahead_ns, doc.min_lookahead_ns);
  EXPECT_DOUBLE_EQ(back.lookahead_utilization, doc.lookahead_utilization);
  EXPECT_EQ(back.events_per_epoch.count, doc.events_per_epoch.count);
  EXPECT_EQ(back.events_per_epoch.p99, doc.events_per_epoch.p99);
  EXPECT_DOUBLE_EQ(back.events_per_epoch.mean, doc.events_per_epoch.mean);
  ASSERT_EQ(back.places.size(), 2u);
  EXPECT_EQ(back.places[0].name, "cell0");
  EXPECT_EQ(back.places[0].events, 1000u);
  EXPECT_EQ(back.places[1].cross_tx, 21u);
  EXPECT_DOUBLE_EQ(back.places[1].work_s, 0.4);
  ASSERT_EQ(back.parties.size(), 1u);
  EXPECT_DOUBLE_EQ(back.parties[0].busy_s, 0.8);
  EXPECT_DOUBLE_EQ(back.parties[0].wait_s, 0.1);
  ASSERT_EQ(back.spans.size(), 1u);
  EXPECT_EQ(back.spans[0].name, "exec cell0");
  EXPECT_EQ(back.spans[0].count, 90u);
  EXPECT_DOUBLE_EQ(back.spans[0].max_ms, 12.25);
  EXPECT_EQ(back.spans_dropped, 3u);
}

TEST(PerfReportTest, FromFlatRejectsWrongSchema) {
  std::string err;
  const auto flat = parse_json_flat(R"({"schema": "something-else"})", &err);
  ASSERT_TRUE(flat);
  PerfDoc doc;
  EXPECT_FALSE(perf_doc_from_flat(*flat, doc, &err));
  EXPECT_NE(err.find("emptcp-perf-v1"), std::string::npos);
}

TEST(PerfReportTest, RenderIncludesTablesAndIsDeterministic) {
  const std::vector<PerfDoc> docs{sample_doc()};
  const std::string a = render_perf_report(docs);
  const std::string b = render_perf_report(docs);
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("== perf: unit-f64-s1 =="), std::string::npos);
  EXPECT_NE(a.find("events/epoch"), std::string::npos);
  EXPECT_NE(a.find("cell0"), std::string::npos);
  EXPECT_NE(a.find("parties"), std::string::npos);
  EXPECT_NE(a.find("exec cell0"), std::string::npos);
  EXPECT_NE(a.find("spans dropped: 3"), std::string::npos);
}

TEST(PerfReportTest, ValidateChromeTraceAcceptsWellFormed) {
  const std::string good = R"({"traceEvents": [
    {"name": "process_name", "ph": "M", "pid": 1, "args": {"name": "x"}},
    {"name": "s", "cat": "emptcp", "ph": "X", "ts": 1.5, "dur": 2.0,
     "pid": 1, "tid": 2, "args": {"depth": 0}},
    {"name": "c", "ph": "C", "ts": 3.0, "pid": 1, "tid": 2,
     "args": {"value": 7.0}}
  ], "displayTimeUnit": "ms"})";
  std::size_t events = 0;
  std::string err;
  EXPECT_TRUE(validate_chrome_trace(good, events, err)) << err;
  EXPECT_EQ(events, 3u);
}

TEST(PerfReportTest, ValidateChromeTraceRejectsBadRecords) {
  std::size_t events = 0;
  std::string err;
  // Unknown phase.
  EXPECT_FALSE(validate_chrome_trace(
      R"({"traceEvents": [{"name": "a", "ph": "Q", "ts": 1}]})", events,
      err));
  EXPECT_NE(err.find("unknown phase"), std::string::npos);
  // X record missing dur.
  EXPECT_FALSE(validate_chrome_trace(
      R"({"traceEvents": [
        {"name": "a", "ph": "X", "ts": 1, "pid": 1, "tid": 1}]})",
      events, err));
  // No events at all.
  EXPECT_FALSE(validate_chrome_trace(R"({"traceEvents": []})", events, err));
  // Malformed JSON.
  EXPECT_FALSE(validate_chrome_trace("{not json", events, err));
}

}  // namespace
}  // namespace emptcp::analysis
