#include "analysis/histogram.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <random>
#include <vector>

#include "stats/summary.hpp"

namespace emptcp::analysis {
namespace {

TEST(LogHistogramTest, EmptyHistogramIsInert) {
  LogHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_DOUBLE_EQ(h.quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h.mean(), 0.0);
  EXPECT_TRUE(h.cdf().empty());
}

TEST(LogHistogramTest, ExactExtremesAndMeanCarryNoBucketError) {
  LogHistogram h;
  h.add(1.0);
  h.add(2.0);
  h.add(7.0);
  EXPECT_DOUBLE_EQ(h.min(), 1.0);
  EXPECT_DOUBLE_EQ(h.max(), 7.0);
  EXPECT_DOUBLE_EQ(h.sum(), 10.0);
  EXPECT_DOUBLE_EQ(h.mean(), 10.0 / 3.0);
  EXPECT_DOUBLE_EQ(h.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(h.quantile(1.0), 7.0);
}

TEST(LogHistogramTest, UnderflowAndOverflowPinToRangeEdges) {
  LogHistogram h(LogHistogram::Config{1.0, 100.0, 1.02});
  h.add(0.0);      // below min -> underflow
  h.add(-5.0);     // negative -> underflow
  h.add(1e6);      // >= max -> overflow
  h.add(std::nan(""));  // NaN must not corrupt state
  EXPECT_EQ(h.underflow(), 2u);
  EXPECT_EQ(h.overflow(), 1u);
  // All three real samples still count; the NaN is dropped.
  EXPECT_EQ(h.count(), 3u);
  // Quantiles stay finite even with only out-of-range samples.
  EXPECT_TRUE(std::isfinite(h.quantile(0.5)));
}

TEST(LogHistogramTest, QuantilesWithinConfiguredRelativeError) {
  // The default 2% growth bounds relative quantile error at one bucket
  // width. Check against exact order statistics on a lognormal sample —
  // the heavy-tailed shape download times and energy actually take.
  std::mt19937 rng(42);
  std::lognormal_distribution<double> dist(1.0, 0.8);
  LogHistogram h;
  std::vector<double> xs;
  xs.reserve(20000);
  for (int i = 0; i < 20000; ++i) {
    const double v = dist(rng);
    xs.push_back(v);
    h.add(v);
  }
  for (const double q : {0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}) {
    const double exact = stats::quantile(xs, q);
    const double est = h.quantile(q);
    // Allow a little beyond one bucket for interpolation at the edges.
    EXPECT_NEAR(est, exact, 0.06 * exact) << "q=" << q;
  }
}

TEST(LogHistogramTest, MemoryIsBucketCountNotSampleCount) {
  LogHistogram h;
  const std::size_t buckets = h.bucket_count();
  ASSERT_GT(buckets, 0u);
  // A million samples must not change the allocated bucket storage.
  for (int i = 0; i < 1000000; ++i) h.add(1.0 + (i % 97) * 0.5);
  EXPECT_EQ(h.bucket_count(), buckets);
  EXPECT_EQ(h.count(), 1000000u);
}

TEST(LogHistogramTest, CdfIsMonotoneAndEndsAtOne) {
  std::mt19937 rng(7);
  std::uniform_real_distribution<double> dist(0.1, 50.0);
  LogHistogram h;
  for (int i = 0; i < 5000; ++i) h.add(dist(rng));
  const std::vector<LogHistogram::CdfPoint> cdf = h.cdf();
  ASSERT_FALSE(cdf.empty());
  double prev_upper = 0.0;
  double prev_frac = 0.0;
  for (const auto& p : cdf) {
    EXPECT_GT(p.upper, prev_upper);
    EXPECT_GE(p.fraction, prev_frac);
    prev_upper = p.upper;
    prev_frac = p.fraction;
  }
  EXPECT_DOUBLE_EQ(cdf.back().fraction, 1.0);
}

TEST(LogHistogramTest, WeightedAddMatchesRepeatedAdd) {
  LogHistogram a;
  LogHistogram b;
  for (int i = 0; i < 10; ++i) a.add(3.5);
  b.add(3.5, 10);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_DOUBLE_EQ(a.quantile(0.5), b.quantile(0.5));
  EXPECT_DOUBLE_EQ(a.sum(), b.sum());
}

}  // namespace
}  // namespace emptcp::analysis
