// Golden-artifact test for the reporting pipeline.
//
// A small committed set of traces + manifests (tests/data/golden/) pins
// down two things at once:
//   1. the simulation + trace serialization is deterministic: regenerating
//      the artifacts in-process reproduces the committed bytes exactly;
//   2. `render_report` over those artifacts is byte-identical to the
//      committed report, independent of input order.
// Regenerate after an intentional behavior change with
//   EMPTCP_REGEN_GOLDEN=1 ctest -R GoldenReport
// and commit the refreshed files under tests/data/golden/.
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/manifest.hpp"
#include "analysis/report.hpp"
#include "analysis/rollup.hpp"
#include "app/scenario.hpp"
#include "stats/trace_export.hpp"

namespace emptcp::analysis {
namespace {

namespace fs = std::filesystem;

constexpr std::uint64_t kDownloadBytes = 256 * 1024;

struct GoldenCase {
  app::Protocol protocol;
  std::uint64_t seed;
};

const std::vector<GoldenCase>& cases() {
  static const std::vector<GoldenCase> kCases{
      {app::Protocol::kEmptcp, 1},
      {app::Protocol::kEmptcp, 2},
      {app::Protocol::kMptcp, 1},
      {app::Protocol::kMptcp, 2},
  };
  return kCases;
}

fs::path golden_dir() {
  return fs::path(EMPTCP_TEST_DATA_DIR) / "golden";
}

std::string artifact_stem(const GoldenCase& c) {
  return std::string("golden-") + app::to_string(c.protocol) + "-s" +
         std::to_string(c.seed);
}

app::ScenarioConfig golden_config() {
  app::ScenarioConfig cfg;
  cfg.trace = true;
  cfg.record_series = false;
  return cfg;
}

struct Artifact {
  std::string jsonl;
  RunManifest manifest;
};

Artifact generate(const GoldenCase& c) {
  app::Scenario scenario(golden_config());
  const app::RunMetrics m =
      scenario.run_download(c.protocol, kDownloadBytes, c.seed);
  Artifact a;
  a.jsonl = stats::trace_to_jsonl(m.trace_events, m.trace_metrics);
  a.manifest.group = "golden";
  a.manifest.protocol = app::to_string(c.protocol);
  a.manifest.seed = c.seed;
  a.manifest.workload = "download-" + std::to_string(kDownloadBytes) + "B";
  a.manifest.trace_file = artifact_stem(c) + ".jsonl";
  a.manifest.trace_events = m.trace_events.size();
  a.manifest.trace_digest = fnv1a64_hex(a.jsonl);
  // Scenario params only: build params (compiler banner) would churn the
  // committed files on every toolchain bump without changing the report.
  a.manifest.params = describe_scenario(golden_config());
  return a;
}

std::string read_file(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return in ? out.str() : std::string();
}

void write_file(const fs::path& p, const std::string& text) {
  std::ofstream out(p, std::ios::binary);
  out << text;
  ASSERT_TRUE(out.good()) << "write failed: " << p;
}

std::vector<LoadedRun> load_committed() {
  std::vector<LoadedRun> runs;
  for (const GoldenCase& c : cases()) {
    const fs::path mpath = golden_dir() / (artifact_stem(c) + ".manifest.json");
    const std::string mtext = read_file(mpath);
    EXPECT_FALSE(mtext.empty()) << mpath;
    const auto doc = parse_json_flat(mtext);
    EXPECT_TRUE(doc.has_value()) << mpath;
    if (!doc) continue;
    LoadedRun run;
    EXPECT_TRUE(manifest_from_json(*doc, run.manifest)) << mpath;
    run.source = mpath.filename().string();
    const std::string jsonl = read_file(golden_dir() / run.manifest.trace_file);
    run.digest_ok = fnv1a64_hex(jsonl) == run.manifest.trace_digest;
    std::string err;
    EXPECT_TRUE(parse_trace_jsonl(jsonl, run.trace, &err)) << err;
    runs.push_back(std::move(run));
  }
  return runs;
}

bool regen_requested() {
  const char* v = std::getenv("EMPTCP_REGEN_GOLDEN");
  return v != nullptr && v[0] != '\0' && v[0] != '0';
}

TEST(GoldenReportTest, ArtifactsMatchCurrentSimulation) {
  if (regen_requested()) {
    fs::create_directories(golden_dir());
    std::vector<LoadedRun> runs;
    for (const GoldenCase& c : cases()) {
      const Artifact a = generate(c);
      write_file(golden_dir() / a.manifest.trace_file, a.jsonl);
      write_file(golden_dir() / (artifact_stem(c) + ".manifest.json"),
                 manifest_to_json(a.manifest));
      // Same source label the loader derives, so the regen'd report is
      // byte-identical to what the compare path renders.
      runs.push_back(
          LoadedRun{a.manifest, {}, true, artifact_stem(c) + ".manifest.json"});
      std::string err;
      ASSERT_TRUE(parse_trace_jsonl(a.jsonl, runs.back().trace, &err)) << err;
    }
    write_file(golden_dir() / "report.txt", render_report(std::move(runs)));
    GTEST_SKIP() << "regenerated golden artifacts in " << golden_dir();
  }
  for (const GoldenCase& c : cases()) {
    const Artifact a = generate(c);
    const std::string committed =
        read_file(golden_dir() / a.manifest.trace_file);
    ASSERT_FALSE(committed.empty())
        << "missing golden trace for " << artifact_stem(c)
        << " (run with EMPTCP_REGEN_GOLDEN=1 to create)";
    // Byte equality — stronger than the digest, and pinpoints drift.
    EXPECT_EQ(a.jsonl, committed)
        << artifact_stem(c)
        << ": simulation output drifted from the committed golden trace";
  }
}

TEST(GoldenReportTest, ReportIsByteIdenticalToCommitted) {
  if (regen_requested()) GTEST_SKIP() << "regen mode";
  std::vector<LoadedRun> runs = load_committed();
  ASSERT_EQ(runs.size(), cases().size());
  for (const LoadedRun& r : runs) {
    EXPECT_TRUE(r.digest_ok) << r.source << ": digest mismatch";
  }
  const std::string expected = read_file(golden_dir() / "report.txt");
  ASSERT_FALSE(expected.empty());
  EXPECT_EQ(render_report(runs), expected);
  // Input order must not matter.
  std::vector<LoadedRun> reversed(runs.rbegin(), runs.rend());
  EXPECT_EQ(render_report(std::move(reversed)), expected);
}

TEST(GoldenReportTest, RollupReproducesHeadlineNumbersFromTraceAlone) {
  if (regen_requested()) GTEST_SKIP() << "regen mode";
  // The run.* gauges inside the serialized trace must reproduce what the
  // simulation reported directly — the property that makes offline
  // reporting trustworthy.
  const GoldenCase c = cases().front();
  app::Scenario scenario(golden_config());
  const app::RunMetrics m =
      scenario.run_download(c.protocol, kDownloadBytes, c.seed);
  const Artifact a = generate(c);
  TraceData t;
  ASSERT_TRUE(parse_trace_jsonl(a.jsonl, t));
  const RunRollup r = rollup_run(a.manifest, t);
  EXPECT_EQ(r.completed, m.completed);
  EXPECT_DOUBLE_EQ(r.time_s, m.download_time_s);
  EXPECT_DOUBLE_EQ(r.energy_j, m.energy_j);
  EXPECT_DOUBLE_EQ(r.wifi_j, m.wifi_j);
  EXPECT_DOUBLE_EQ(r.cell_j, m.cell_j);
  EXPECT_EQ(r.bytes, m.bytes_received);
  ASSERT_GT(r.bytes, 0u);
  // And the independent energy integration tracks the tracker's total.
  EXPECT_GT(r.integrated_energy_j, 0.0);
  EXPECT_NEAR(r.integrated_energy_j, r.energy_j, 0.05 * r.energy_j);
}

}  // namespace
}  // namespace emptcp::analysis
