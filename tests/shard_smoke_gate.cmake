# Tier-1 sharded-campaign smoke: run the committed sharded spec (one
# emptcp cell, 8 clients in 4 shard-engine cells with cross-cell backbone
# traffic) as spec'd, then again into a second directory with --shards 1,
# and require the two artifact sets — traces, manifests, ledger — to be
# byte-identical. The worker-shard count must never change a single
# output byte. Invoked by ctest with:
#   -DCAMPAIGN_TOOL=<path to emptcp-campaign>
#   -DSPEC=<examples/campaigns/sharded_smoke.spec>
#   -DOUT_DIR=<scratch directory; _sharded/_serial suffixes are added>
foreach(var CAMPAIGN_TOOL SPEC OUT_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "shard_smoke_gate: missing -D${var}")
  endif()
endforeach()

set(sharded_dir ${OUT_DIR}_sharded)
set(serial_dir ${OUT_DIR}_serial)
file(REMOVE_RECURSE ${sharded_dir} ${serial_dir})

execute_process(
  COMMAND ${CAMPAIGN_TOOL} --out ${sharded_dir} ${SPEC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE sharded_report
  ERROR_VARIABLE sharded_log)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard_smoke_gate: sharded run failed (${rc}): "
                      "${sharded_log}")
endif()
if(NOT sharded_log MATCHES "sharded fleets: 2 clients/cell")
  message(FATAL_ERROR "shard_smoke_gate: run did not go through the sharded "
                      "path: ${sharded_log}")
endif()
if(NOT sharded_report MATCHES "all digests and energy cross-checks ok")
  message(FATAL_ERROR "shard_smoke_gate: report integrity check failed:\n"
                      "${sharded_report}")
endif()

execute_process(
  COMMAND ${CAMPAIGN_TOOL} --out ${serial_dir} --shards 1 ${SPEC}
  RESULT_VARIABLE rc
  OUTPUT_VARIABLE serial_report
  ERROR_VARIABLE serial_log)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "shard_smoke_gate: --shards 1 run failed (${rc}): "
                      "${serial_log}")
endif()

# Every artifact byte-identical across shard counts: ledger first (it
# holds the trace digests), then each file the sharded run produced.
foreach(name campaign.ledger)
  file(READ ${sharded_dir}/${name} sharded_bytes)
  file(READ ${serial_dir}/${name} serial_bytes)
  if(NOT sharded_bytes STREQUAL serial_bytes)
    message(FATAL_ERROR "shard_smoke_gate: ${name} differs between the "
                        "sharded and --shards 1 runs")
  endif()
endforeach()

file(GLOB sharded_files RELATIVE ${sharded_dir} ${sharded_dir}/*)
file(GLOB serial_files RELATIVE ${serial_dir} ${serial_dir}/*)
if(NOT sharded_files STREQUAL serial_files)
  message(FATAL_ERROR "shard_smoke_gate: artifact sets differ: "
                      "[${sharded_files}] vs [${serial_files}]")
endif()
foreach(name ${sharded_files})
  file(READ ${sharded_dir}/${name} sharded_bytes)
  file(READ ${serial_dir}/${name} serial_bytes)
  if(NOT sharded_bytes STREQUAL serial_bytes)
    message(FATAL_ERROR "shard_smoke_gate: ${name} differs between the "
                        "sharded and --shards 1 runs")
  endif()
endforeach()

# Same artifacts -> same rendered report.
if(NOT sharded_report STREQUAL serial_report)
  message(FATAL_ERROR "shard_smoke_gate: reports differ between shard counts")
endif()

message(STATUS "shard_smoke_gate: sharded and --shards 1 artifacts are "
               "byte-identical (${sharded_files})")
