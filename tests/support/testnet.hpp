// Shared test fixture topology: a client with WiFi + LTE interfaces and a
// single-homed server, mirroring the scenario harness but with direct
// access to every link so tests can mutate conditions mid-run.
#pragma once

#include <memory>

#include "net/link.hpp"
#include "net/node.hpp"
#include "sim/simulation.hpp"

namespace emptcp::test {

inline constexpr net::Addr kWifiAddr = 1;
inline constexpr net::Addr kCellAddr = 2;
inline constexpr net::Addr kServerAddr = 10;
inline constexpr net::Port kPort = 80;

/// Two-path dumbbell: client(wifi,lte) <-> server. Each direction of each
/// path is one Link (no separate wan hop; tests set the RTT via the link
/// propagation delay).
struct TestNet {
  explicit TestNet(std::uint64_t seed = 1, double wifi_mbps = 10.0,
                   double cell_mbps = 10.0)
      : sim(seed), client(sim, "client"), server(sim, "server") {
    wifi_if = &client.add_interface({net::InterfaceType::kWifi, kWifiAddr,
                                     "c-wifi"});
    cell_if = &client.add_interface({net::InterfaceType::kLte, kCellAddr,
                                     "c-lte"});
    srv_if = &server.add_interface({net::InterfaceType::kEthernet,
                                    kServerAddr, "s-eth"});

    auto mk = [this](double mbps, const char* name) {
      net::Link::Config cfg;
      cfg.rate_mbps = mbps;
      cfg.prop_delay = sim::milliseconds(10);
      cfg.queue_limit_bytes = 256 * 1024;
      cfg.name = name;
      return std::make_unique<net::Link>(sim, cfg);
    };
    wifi_up = mk(wifi_mbps, "wifi-up");
    wifi_down = mk(wifi_mbps, "wifi-down");
    cell_up = mk(cell_mbps, "cell-up");
    cell_down = mk(cell_mbps, "cell-down");

    wifi_if->set_default_route(*wifi_up);
    cell_if->set_default_route(*cell_up);
    wifi_up->set_receiver([this](const net::Packet& p) { srv_if->deliver(p); });
    cell_up->set_receiver([this](const net::Packet& p) { srv_if->deliver(p); });
    srv_if->add_route(kWifiAddr, *wifi_down);
    srv_if->add_route(kCellAddr, *cell_down);
    wifi_down->set_receiver(
        [this](const net::Packet& p) { wifi_if->deliver(p); });
    cell_down->set_receiver(
        [this](const net::Packet& p) { cell_if->deliver(p); });
  }

  sim::Simulation sim;
  net::Node client;
  net::Node server;
  net::NetworkInterface* wifi_if = nullptr;
  net::NetworkInterface* cell_if = nullptr;
  net::NetworkInterface* srv_if = nullptr;
  std::unique_ptr<net::Link> wifi_up, wifi_down, cell_up, cell_down;
};

}  // namespace emptcp::test
