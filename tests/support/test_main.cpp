// Custom gtest main: on any test failure, dump the flight recorder of the
// simulation currently under test (if one is alive on this thread) so the
// failure report carries the last instrumented simulator activity. The
// ring is on by default and survives with the Simulation object, so this
// works even for tests that never enabled full tracing.
#include <gtest/gtest.h>

#include <cstdio>

#include "trace/sink.hpp"

namespace {

class FlightRecorderDumper : public ::testing::EmptyTestEventListener {
 public:
  void OnTestStart(const ::testing::TestInfo&) override { dumped_ = false; }

  void OnTestPartResult(const ::testing::TestPartResult& result) override {
    if (!result.failed() || dumped_) return;
    emptcp::trace::TraceSink* sink = emptcp::trace::current_sink();
    if (sink == nullptr || sink->flight().total() == 0) return;
    dumped_ = true;  // once per test: later failures add no new context
    std::fprintf(stderr, "[  FLIGHT  ] %s",
                 sink->flight().dump().c_str());
    // Under EMPTCP_FLIGHT_DIR also write a file dump whose name embeds
    // process/thread/sequence ids — sharded ctest runs (EMPTCP_JOBS > 1)
    // execute the same binary concurrently, and test-name-only paths
    // would collide.
    const ::testing::TestInfo* info =
        ::testing::UnitTest::GetInstance()->current_test_info();
    const std::string context =
        info == nullptr ? "test"
                        : std::string(info->test_suite_name()) + "." +
                              info->name();
    const std::string path = emptcp::trace::dump_flight_to_file(
        sink->flight(), context, "test failure: " + context);
    if (!path.empty()) {
      std::fprintf(stderr, "[  FLIGHT  ] written to %s\n", path.c_str());
    }
    std::fflush(stderr);
  }

 private:
  bool dumped_ = false;
};

}  // namespace

int main(int argc, char** argv) {
  ::testing::InitGoogleTest(&argc, argv);
  ::testing::UnitTest::GetInstance()->listeners().Append(
      new FlightRecorderDumper);  // the listener list takes ownership
  return RUN_ALL_TESTS();
}
