// Workload distribution models: determinism, clamping, and the basic
// statistical shape of each sampler.
#include "workload/distributions.hpp"

#include <gtest/gtest.h>

#include "sim/random.hpp"

namespace emptcp::workload {
namespace {

TEST(SizeDistTest, FixedReturnsMeanClamped) {
  sim::Rng rng(1);
  SizeDist d;
  d.kind = SizeDist::Kind::kFixed;
  d.mean_bytes = 123456;
  EXPECT_EQ(d.sample(rng), 123456u);

  d.mean_bytes = 10;  // below min_bytes
  d.min_bytes = 1024;
  EXPECT_EQ(d.sample(rng), 1024u);
}

TEST(SizeDistTest, LognormalStaysInClampAndIsDeterministic) {
  SizeDist d;
  d.kind = SizeDist::Kind::kLognormal;
  d.log_mu = 11.0;
  d.log_sigma = 2.0;
  d.min_bytes = 4096;
  d.max_bytes = 1 << 24;
  sim::Rng a(42);
  sim::Rng b(42);
  for (int i = 0; i < 2000; ++i) {
    const std::uint64_t va = d.sample(a);
    EXPECT_GE(va, d.min_bytes);
    EXPECT_LE(va, d.max_bytes);
    EXPECT_EQ(va, d.sample(b));  // same seed, same draw order
  }
}

TEST(SizeDistTest, ParetoRespectsScaleAndTail) {
  SizeDist d;
  d.kind = SizeDist::Kind::kPareto;
  d.alpha = 1.2;
  d.min_bytes = 10'000;
  d.max_bytes = std::uint64_t{1} << 40;
  sim::Rng rng(7);
  std::uint64_t max_seen = 0;
  for (int i = 0; i < 5000; ++i) {
    const std::uint64_t v = d.sample(rng);
    EXPECT_GE(v, d.min_bytes);
    max_seen = std::max(max_seen, v);
  }
  // Heavy tail: with 5000 draws at alpha=1.2 the max should far exceed
  // the scale.
  EXPECT_GT(max_seen, 10 * d.min_bytes);
}

TEST(SizeDistTest, EmpiricalPicksOnlyFromSupport) {
  SizeDist d;
  d.kind = SizeDist::Kind::kEmpirical;
  d.values = {100'000, 200'000, 400'000};
  d.min_bytes = 1;
  sim::Rng rng(3);
  bool saw[3] = {false, false, false};
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t v = d.sample(rng);
    const bool known =
        v == 100'000u || v == 200'000u || v == 400'000u;
    ASSERT_TRUE(known) << v;
    if (v == 100'000u) saw[0] = true;
    if (v == 200'000u) saw[1] = true;
    if (v == 400'000u) saw[2] = true;
  }
  EXPECT_TRUE(saw[0] && saw[1] && saw[2]);
}

TEST(ArrivalProcessTest, DeterministicUsesFixedGap) {
  ArrivalProcess a;
  a.kind = ArrivalProcess::Kind::kDeterministic;
  a.rate_per_s = 4.0;
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(a.next_start_s(rng, 1.0, 0), 1.25);
  EXPECT_DOUBLE_EQ(a.next_start_s(rng, 1.25, 1), 1.5);
}

TEST(ArrivalProcessTest, PoissonGapsAverageInverseRate) {
  ArrivalProcess a;
  a.kind = ArrivalProcess::Kind::kPoisson;
  a.rate_per_s = 10.0;
  sim::Rng rng(9);
  double prev = 0.0;
  double sum_gap = 0.0;
  constexpr int kDraws = 20'000;
  for (int i = 0; i < kDraws; ++i) {
    const double next = a.next_start_s(rng, prev, static_cast<std::size_t>(i));
    EXPECT_GT(next, prev);
    sum_gap += next - prev;
    prev = next;
  }
  EXPECT_NEAR(sum_gap / kDraws, 0.1, 0.01);
}

TEST(ArrivalProcessTest, TraceFollowsScheduleThenExhausts) {
  ArrivalProcess a;
  a.kind = ArrivalProcess::Kind::kTrace;
  a.times_s = {0.5, 1.0, 2.5};
  sim::Rng rng(1);
  EXPECT_DOUBLE_EQ(a.next_start_s(rng, 0.0, 0), 0.5);
  EXPECT_DOUBLE_EQ(a.next_start_s(rng, 0.5, 1), 1.0);
  EXPECT_DOUBLE_EQ(a.next_start_s(rng, 1.0, 2), 2.5);
  EXPECT_LT(a.next_start_s(rng, 2.5, 3), 0.0);  // exhausted
}

TEST(ThinkTimeTest, Models) {
  sim::Rng rng(5);
  ThinkTime t;
  EXPECT_DOUBLE_EQ(t.sample_s(rng), 0.0);  // kNone

  t.kind = ThinkTime::Kind::kFixed;
  t.mean_s = 1.5;
  EXPECT_DOUBLE_EQ(t.sample_s(rng), 1.5);

  t.kind = ThinkTime::Kind::kExponential;
  t.mean_s = 2.0;
  double sum = 0.0;
  for (int i = 0; i < 10'000; ++i) {
    const double v = t.sample_s(rng);
    EXPECT_GE(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10'000.0, 2.0, 0.2);
}

}  // namespace
}  // namespace emptcp::workload
