// ClientFleet: many concurrent connections multiplexed on one client node.
//
// Exercises the Node 4-tuple demux and PacketPool slot reuse under fleet
// load (>= 64 simultaneous flows), the per-flow record/histogram pipeline,
// and the determinism contract for whole fleets.
#include "workload/fleet.hpp"

#include <gtest/gtest.h>

#include <set>

#include "app/world.hpp"
#include "net/packet_pool.hpp"
#include "trace/event.hpp"

namespace emptcp::workload {
namespace {

FleetConfig many_flow_config(std::size_t clients) {
  FleetConfig cfg;
  cfg.scenario.wifi.down_mbps = 50.0;
  cfg.scenario.cell.down_mbps = 20.0;
  cfg.scenario.record_series = false;
  cfg.protocol = app::Protocol::kEmptcp;
  cfg.mode = FleetConfig::Mode::kClosed;
  cfg.clients = clients;
  cfg.flows_per_client = 1;
  cfg.flow_size.kind = SizeDist::Kind::kFixed;
  cfg.flow_size.mean_bytes = 100 * 1024;
  return cfg;
}

TEST(ClientFleetTest, SixtyFourConcurrentFlowsAllComplete) {
  ClientFleet fleet(many_flow_config(64));
  const FleetMetrics m = fleet.run(11);

  EXPECT_EQ(m.flows_started, 64u);
  EXPECT_EQ(m.flows_completed, 64u);
  ASSERT_EQ(m.flows.size(), 64u);
  std::set<std::uint32_t> ids;
  for (const FlowRecord& f : m.flows) {
    EXPECT_TRUE(f.completed);
    EXPECT_EQ(f.bytes, 100u * 1024u);
    EXPECT_GT(f.fct_s(), 0.0);
    EXPECT_GE(f.energy_j_est, 0.0);
    ids.insert(f.id);
  }
  EXPECT_EQ(ids.size(), 64u);  // one server connection per flow

  // Every packet must have demuxed to a registered flow or listener:
  // 64 concurrent connections on two interfaces may not leak a single
  // packet past the 4-tuple tables.
  app::World& w = fleet.world();
  EXPECT_EQ(w.client.unmatched_packets(), 0u);
  EXPECT_EQ(w.server.unmatched_packets(), 0u);

  // PacketPool reuse: after the run nearly every pooled slot is back on
  // the freelist (the run halts at completion, so a few handles may sit
  // in never-executed delivery events), and the high-water mark stays far
  // below total traffic (~70 packets per flow if slots were never reused).
  auto& pool = w.sim.context<net::PacketPool>();
  EXPECT_GT(pool.allocated(), 0u);
  EXPECT_GE(pool.idle() + 4, pool.allocated());
  EXPECT_LT(pool.allocated(), 64u * 70u / 4u);

  // World totals line up with the per-flow records.
  EXPECT_TRUE(m.run.completed);
  EXPECT_EQ(m.run.bytes_received, 64u * 100u * 1024u);
  EXPECT_EQ(m.fct_hist.count(), 64u);
  EXPECT_EQ(m.epb_hist.count(), 64u);
}

TEST(ClientFleetTest, FleetRunsAreDeterministic) {
  FleetConfig cfg = many_flow_config(16);
  cfg.flow_size.kind = SizeDist::Kind::kLognormal;
  cfg.flow_size.log_mu = 11.0;
  cfg.flow_size.log_sigma = 1.0;
  cfg.flow_size.min_bytes = 10 * 1024;
  cfg.flow_size.max_bytes = 512 * 1024;
  cfg.flows_per_client = 2;
  cfg.think.kind = ThinkTime::Kind::kExponential;
  cfg.think.mean_s = 0.05;

  ClientFleet a(cfg);
  ClientFleet b(cfg);
  const FleetMetrics ma = a.run(21);
  const FleetMetrics mb = b.run(21);
  ASSERT_EQ(ma.flows.size(), mb.flows.size());
  for (std::size_t i = 0; i < ma.flows.size(); ++i) {
    EXPECT_EQ(ma.flows[i].bytes, mb.flows[i].bytes);
    EXPECT_DOUBLE_EQ(ma.flows[i].start_s, mb.flows[i].start_s);
    EXPECT_DOUBLE_EQ(ma.flows[i].end_s, mb.flows[i].end_s);
    EXPECT_DOUBLE_EQ(ma.flows[i].energy_j_est, mb.flows[i].energy_j_est);
  }
  EXPECT_DOUBLE_EQ(ma.run.energy_j, mb.run.energy_j);
}

TEST(ClientFleetTest, OpenLoopDeterministicArrivalsRunToBudget) {
  FleetConfig cfg = many_flow_config(4);
  cfg.mode = FleetConfig::Mode::kOpen;
  cfg.flows_per_client = 3;  // 12-flow budget
  cfg.arrival.kind = ArrivalProcess::Kind::kDeterministic;
  cfg.arrival.rate_per_s = 20.0;
  cfg.flow_size.mean_bytes = 50 * 1024;

  ClientFleet fleet(cfg);
  const FleetMetrics m = fleet.run(5);
  EXPECT_EQ(m.flows_started, 12u);
  EXPECT_EQ(m.flows_completed, 12u);
  // Arrivals are spaced 50 ms apart regardless of completions.
  ASSERT_GE(m.flows.size(), 2u);
  EXPECT_NEAR(m.flows[1].start_s - m.flows[0].start_s, 0.05, 1e-9);
}

TEST(ClientFleetTest, PerFlowEnergySharesSumToTrackerDelta) {
  ClientFleet fleet(many_flow_config(8));
  const FleetMetrics m = fleet.run(3);
  double sum = 0.0;
  for (const FlowRecord& f : m.flows) sum += f.energy_j_est;
  // Attribution splits download-window energy across overlapping flows;
  // the shares must not exceed the device total (tail/idle energy after
  // the last completion belongs to no flow).
  EXPECT_GT(sum, 0.0);
  EXPECT_LE(sum, m.run.energy_j * 1.001);
}

TEST(ClientFleetTest, TraceEventsCarryFlowLifecycles) {
  FleetConfig cfg = many_flow_config(4);
  cfg.scenario.trace = true;
  ClientFleet fleet(cfg);
  const FleetMetrics m = fleet.run(2);
  std::size_t starts = 0;
  std::size_t completes = 0;
  for (const trace::Event& e : m.run.trace_events) {
    if (e.kind == trace::Kind::kFlowStart) ++starts;
    if (e.kind == trace::Kind::kFlowComplete) ++completes;
  }
  EXPECT_EQ(starts, 4u);
  EXPECT_EQ(completes, 4u);
}

}  // namespace
}  // namespace emptcp::workload
