// ShardedFleet: one fleet partitioned into cells on the conservative
// ShardEngine. The headline contract under test is determinism: every
// output byte — flow records, merged JSONL trace, metric snapshot — is
// identical for any worker-shard count, including the EMPTCP_JOBS-derived
// default (this suite is re-run under EMPTCP_JOBS=4 by ctest). The
// backbone coupling must be genuinely load-bearing (cross-cell flows move
// real bytes) and the per-cell invariant oracles must hold regardless of
// how cells are mapped onto threads.
#include "workload/sharded_fleet.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <stdexcept>
#include <string>
#include <vector>

#include "app/world.hpp"
#include "check/oracle.hpp"
#include "runtime/telemetry.hpp"
#include "stats/trace_export.hpp"

namespace emptcp::workload {
namespace {

FleetConfig sharded_config(std::size_t shards) {
  FleetConfig cfg;
  cfg.scenario.wifi.down_mbps = 50.0;
  cfg.scenario.cell.down_mbps = 20.0;
  cfg.scenario.record_series = false;
  cfg.scenario.trace = true;
  cfg.protocol = app::Protocol::kEmptcp;
  cfg.mode = FleetConfig::Mode::kClosed;
  cfg.clients = 8;
  cfg.flows_per_client = 1;
  cfg.flow_size.kind = SizeDist::Kind::kFixed;
  cfg.flow_size.mean_bytes = 50 * 1024;
  cfg.sharding.clients_per_cell = 2;  // -> 4 cells
  cfg.sharding.shards = shards;
  // Each cell launches 2 flows (2 clients x 1); cross_every=2 makes the
  // second one fetch from the neighbour cell over the backbone.
  cfg.sharding.cross_every = 2;
  return cfg;
}

std::string run_and_serialize(std::size_t shards, FleetMetrics* out = nullptr) {
  ShardedFleet fleet(sharded_config(shards));
  FleetMetrics m = fleet.run(17);
  std::string jsonl =
      stats::trace_to_jsonl(m.run.trace_events, m.run.trace_metrics);
  if (out != nullptr) *out = std::move(m);
  return jsonl;
}

TEST(ShardedFleetTest, AllFlowsCompleteAcrossCellsIncludingCrossTraffic) {
  ShardedFleet fleet(sharded_config(2));
  EXPECT_EQ(sharded_config(2).cell_count(), 4u);
  const FleetMetrics m = fleet.run(7);

  EXPECT_EQ(fleet.cell_count(), 4u);
  EXPECT_EQ(m.flows_started, 8u);
  EXPECT_EQ(m.flows_completed, 8u);
  EXPECT_TRUE(m.run.completed);
  ASSERT_EQ(m.flows.size(), 8u);

  std::set<std::uint32_t> ids;
  for (const FlowRecord& f : m.flows) {
    EXPECT_TRUE(f.completed);
    EXPECT_EQ(f.bytes, 50u * 1024u);
    EXPECT_EQ(f.delivered, f.bytes);
    EXPECT_GT(f.fct_s(), 0.0);
    ids.insert(f.id);
  }
  EXPECT_EQ(ids.size(), 8u);  // global ids g = cell + k*C are unique
  EXPECT_EQ(m.run.bytes_received, 8u * 50u * 1024u);

  // cross_every=2 with 2 launches per cell makes every cell's second flow
  // remote: the backbone must have carried real traffic.
  EXPECT_GT(fleet.engine().cross_messages(), 0u);
  EXPECT_GT(fleet.engine().epochs(), 0u);
}

TEST(ShardedFleetTest, OutputsAreByteIdenticalForAnyShardCount) {
  FleetMetrics m1;
  FleetMetrics m4;
  const std::string one = run_and_serialize(1, &m1);
  const std::string two = run_and_serialize(2);
  const std::string four = run_and_serialize(4, &m4);

  // The whole serialized artifact — events and the metric snapshot — is
  // byte-identical however many worker threads executed the cells.
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);

  ASSERT_EQ(m1.flows.size(), m4.flows.size());
  for (std::size_t i = 0; i < m1.flows.size(); ++i) {
    EXPECT_EQ(m1.flows[i].id, m4.flows[i].id);
    EXPECT_EQ(m1.flows[i].bytes, m4.flows[i].bytes);
    EXPECT_DOUBLE_EQ(m1.flows[i].start_s, m4.flows[i].start_s);
    EXPECT_DOUBLE_EQ(m1.flows[i].end_s, m4.flows[i].end_s);
    EXPECT_DOUBLE_EQ(m1.flows[i].energy_j_est, m4.flows[i].energy_j_est);
  }
  EXPECT_DOUBLE_EQ(m1.run.energy_j, m4.run.energy_j);
  EXPECT_EQ(m1.run.profile.events_executed, m4.run.profile.events_executed);
}

TEST(ShardedFleetTest, JobsDerivedShardCountMatchesExplicitOne) {
  // shards=0 resolves to the EMPTCP_JOBS-derived worker count — whatever
  // that is on this machine (or under the ctest EMPTCP_JOBS=4 re-run), the
  // artifact must not change.
  FleetConfig cfg = sharded_config(0);
  ShardedFleet fleet(cfg);
  const FleetMetrics m = fleet.run(17);
  const std::string jobs_derived =
      stats::trace_to_jsonl(m.run.trace_events, m.run.trace_metrics);
  EXPECT_EQ(jobs_derived, run_and_serialize(1));
}

TEST(ShardedFleetTest, FlowSizesArePureFunctionOfSeedAndGlobalId) {
  ShardedFleet a(sharded_config(1));
  ShardedFleet b(sharded_config(2));
  const FleetMetrics ma = a.run(23);
  const FleetMetrics mb = b.run(23);
  ASSERT_EQ(ma.flows.size(), mb.flows.size());
  for (const FlowRecord& f : ma.flows) {
    // The server resolved the size from the app tag alone; the record must
    // agree with the pure function, or remote cells would serve garbage.
    EXPECT_EQ(f.bytes, a.flow_bytes(f.id));
    EXPECT_EQ(f.bytes, b.flow_bytes(f.id));
  }
}

TEST(ShardedFleetTest, PerCellOraclesHoldForAnyShardCount) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{2}}) {
    ShardedFleet fleet(sharded_config(shards));
    fleet.start(31);
    std::vector<std::unique_ptr<check::Oracle>> oracles;
    for (std::size_t c = 0; c < fleet.cell_count(); ++c) {
      auto oracle = std::make_unique<check::Oracle>();
      oracle->attach(fleet.cell_world(c).sim);
      oracles.push_back(std::move(oracle));
    }
    fleet.run_until(60.0);
    EXPECT_EQ(fleet.flows_completed(), 8u) << "shards=" << shards;
    for (std::size_t c = 0; c < oracles.size(); ++c) {
      EXPECT_TRUE(oracles[c]->ok())
          << "shards=" << shards << " cell=" << c << ": "
          << (oracles[c]->violations().empty()
                  ? std::string("violation details dropped")
                  : oracles[c]->violations().front().invariant + ": " +
                        oracles[c]->violations().front().detail);
      oracles[c]->detach();
    }
  }
}

TEST(ShardedFleetTest, OpenLoopArrivalsDecomposeAcrossCells) {
  FleetConfig cfg = sharded_config(2);
  cfg.mode = FleetConfig::Mode::kOpen;
  cfg.flows_per_client = 2;  // 16-flow budget fleet-wide
  cfg.arrival.kind = ArrivalProcess::Kind::kPoisson;
  cfg.arrival.rate_per_s = 40.0;
  ShardedFleet fleet(cfg);
  const FleetMetrics m = fleet.run(13);
  EXPECT_EQ(m.flows_started, 16u);
  EXPECT_EQ(m.flows_completed, 16u);
  EXPECT_TRUE(m.run.completed);
}

TEST(ShardedFleetTest, ZeroBackboneDelayIsRejectedLoudly) {
  FleetConfig cfg = sharded_config(1);
  cfg.sharding.backbone_delay = 0;
  ShardedFleet fleet(cfg);
  EXPECT_THROW(fleet.run(3), std::invalid_argument);
}

TEST(ShardedFleetTest, RunFleetDispatchesOnCellStructure) {
  // clients_per_cell == 0: the classic single-World ClientFleet path.
  FleetConfig plain = sharded_config(1);
  plain.scenario.trace = false;
  plain.sharding.clients_per_cell = 0;
  const FleetMetrics mp = run_fleet(plain, 5);
  EXPECT_EQ(mp.flows_completed, 8u);

  // Non-zero: the sharded path (observable via the fleet.cells gauge).
  FleetConfig sharded = sharded_config(1);
  const FleetMetrics ms = run_fleet(sharded, 5);
  EXPECT_EQ(ms.flows_completed, 8u);
  bool saw_cells = false;
  for (const auto& s : ms.run.trace_metrics) {
    if (s.name == "fleet.cells") {
      saw_cells = true;
      EXPECT_DOUBLE_EQ(s.value, 4.0);
    }
  }
  EXPECT_TRUE(saw_cells);
}

TEST(ShardedFleetTest, TelemetryOnNeverChangesAnOutputByte) {
  // Baseline with the wall-clock profiler off: no perf sidecar data.
  FleetMetrics m_off;
  const std::string off = run_and_serialize(2, &m_off);
  EXPECT_FALSE(m_off.perf.has_value());

  runtime::Telemetry::instance().enable(true);
  FleetMetrics m_on2;
  FleetMetrics m_on4;
  const std::string on2 = run_and_serialize(2, &m_on2);
  const std::string on4 = run_and_serialize(4, &m_on4);
  runtime::Telemetry::instance().enable(false);
  runtime::Telemetry::instance().clear();

  // The profiler observes; it must never perturb a deterministic artifact,
  // at any shard count.
  EXPECT_EQ(off, on2);
  EXPECT_EQ(off, on4);

  // With the profiler on, the engine snapshot rides along out-of-band.
  ASSERT_TRUE(m_on2.perf.has_value());
  const analysis::PerfDoc& doc = *m_on2.perf;
  EXPECT_GT(doc.epochs, 0u);
  ASSERT_EQ(doc.places.size(), 4u);
  std::uint64_t events = 0;
  std::uint64_t cross_tx = 0;
  double work = 0.0;
  for (const auto& p : doc.places) {
    events += p.events;
    cross_tx += p.cross_tx;
    work += p.work_s;
  }
  EXPECT_EQ(events, m_on2.run.profile.events_executed);
  EXPECT_GT(cross_tx, 0u);  // cross_every=2 forces backbone traffic
  EXPECT_GT(work, 0.0);     // wall-clock exec time was measured
}

TEST(ShardedFleetTest, SingleCellFleetNeedsNoBackbone) {
  FleetConfig cfg = sharded_config(2);
  cfg.sharding.clients_per_cell = 8;  // everything in one cell
  ShardedFleet fleet(cfg);
  const FleetMetrics m = fleet.run(9);
  EXPECT_EQ(fleet.cell_count(), 1u);
  EXPECT_EQ(m.flows_completed, 8u);
  EXPECT_EQ(fleet.engine().cross_messages(), 0u);
}

}  // namespace
}  // namespace emptcp::workload
