// ShardEngine epoch telemetry: the always-on aggregates (epochs, events
// per epoch, virtual advance, cross messages, imbalance) are pure
// functions of (partition structure, workload) — identical across shard
// counts and unaffected by the wall-clock profiler being on or off.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "runtime/telemetry.hpp"
#include "sim/shard_engine.hpp"
#include "sim/simulation.hpp"

namespace emptcp::sim {
namespace {

struct CountingSink : CrossSink {
  int received = 0;
  void on_cross_message(Time, const void*, std::size_t) override {
    ++received;
  }
};

/// Two places exchanging periodic work plus one cross message; returns
/// the engine's perf snapshot after a fixed virtual window.
ShardEnginePerf run_pair(std::size_t shards, std::uint64_t* events_out,
                         CountingSink* sink_out = nullptr) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(shards);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  CountingSink sink;
  const std::size_t e =
      eng.add_edge(pa, pb, milliseconds(10), sink, sizeof(int));

  // Periodic self-rescheduling work on both places, denser on a.
  struct Tick {
    Simulation* sim;
    Duration period;
    void arm() {
      sim->in(period, [this] { arm(); });
    }
  };
  Tick ta{&a, milliseconds(1)};
  Tick tb{&b, milliseconds(3)};
  a.at(kTimeZero, [&] { ta.arm(); });
  b.at(kTimeZero, [&] { tb.arm(); });
  a.at(milliseconds(5), [&] {
    const int v = 7;
    eng.post(e, a.now() + milliseconds(10), &v, sizeof(v));
  });

  eng.run_until(seconds(1));
  if (events_out != nullptr) *events_out = eng.events_executed();
  if (sink_out != nullptr) sink_out->received = sink.received;
  return eng.perf();
}

/// The deterministic slice of a perf snapshot, comparable across runs.
struct DeterministicView {
  std::uint64_t epochs, busy_epochs, cross;
  std::uint64_t ev_count, ev_sum, adv_sum, imb_count;
  std::vector<std::uint64_t> place_events;
};

DeterministicView view(const ShardEnginePerf& p) {
  DeterministicView v;
  v.epochs = p.epochs;
  v.busy_epochs = p.busy_epochs;
  v.cross = p.cross_messages;
  v.ev_count = p.events_per_epoch.count();
  v.ev_sum = p.events_per_epoch.sum();
  v.adv_sum = p.advance_ns_per_epoch.sum();
  v.imb_count = p.imbalance_pct.count();
  for (const auto& pl : p.places) v.place_events.push_back(pl.events);
  return v;
}

class EnginePerfTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime::Telemetry::instance().enable(false);
    runtime::Telemetry::instance().clear();
  }
  void TearDown() override {
    runtime::Telemetry::instance().enable(false);
    runtime::Telemetry::instance().clear();
  }
};

TEST_F(EnginePerfTest, AccountingMatchesEngineTotals) {
  std::uint64_t events = 0;
  const ShardEnginePerf perf = run_pair(1, &events);

  // Histogram sample counts equal the epoch count.
  EXPECT_GT(perf.epochs, 0u);
  EXPECT_EQ(perf.events_per_epoch.count(), perf.epochs);
  EXPECT_EQ(perf.advance_ns_per_epoch.count(), perf.epochs);
  EXPECT_EQ(perf.cross_per_epoch.count(), perf.epochs);
  // Imbalance is only defined for busy epochs.
  EXPECT_EQ(perf.imbalance_pct.count(), perf.busy_epochs);
  EXPECT_LE(perf.busy_epochs, perf.epochs);
  EXPECT_GT(perf.busy_epochs, 0u);

  // Per-place event totals sum to the engine's total; per-epoch event
  // samples sum to the same thing.
  ASSERT_EQ(perf.places.size(), 2u);
  EXPECT_EQ(perf.places[0].events + perf.places[1].events, events);
  EXPECT_EQ(perf.events_per_epoch.sum(), events);
  EXPECT_EQ(perf.cross_per_epoch.sum(), perf.cross_messages);
  EXPECT_EQ(perf.cross_messages, 1u);
  // The virtual advance over all epochs covers the run window exactly.
  EXPECT_EQ(perf.advance_ns_per_epoch.sum(),
            static_cast<std::uint64_t>(seconds(1)));
  EXPECT_EQ(perf.min_lookahead, milliseconds(10));
  // work_s stays zero with the wall-clock profiler off.
  EXPECT_EQ(perf.places[0].work_s, 0.0);
  EXPECT_EQ(perf.places[1].work_s, 0.0);
}

TEST_F(EnginePerfTest, DeterministicAcrossShardCounts) {
  std::uint64_t e1 = 0;
  std::uint64_t e2 = 0;
  const DeterministicView v1 = view(run_pair(1, &e1));
  const DeterministicView v2 = view(run_pair(2, &e2));
  EXPECT_EQ(e1, e2);
  EXPECT_EQ(v1.epochs, v2.epochs);
  EXPECT_EQ(v1.busy_epochs, v2.busy_epochs);
  EXPECT_EQ(v1.cross, v2.cross);
  EXPECT_EQ(v1.ev_count, v2.ev_count);
  EXPECT_EQ(v1.ev_sum, v2.ev_sum);
  EXPECT_EQ(v1.adv_sum, v2.adv_sum);
  EXPECT_EQ(v1.imb_count, v2.imb_count);
  EXPECT_EQ(v1.place_events, v2.place_events);
}

TEST_F(EnginePerfTest, TelemetryOnDoesNotChangeVirtualState) {
  std::uint64_t off_events = 0;
  const DeterministicView off = view(run_pair(2, &off_events));

  runtime::Telemetry::instance().enable(true);
  std::uint64_t on_events = 0;
  const ShardEnginePerf on_perf = run_pair(2, &on_events);
  runtime::Telemetry::instance().enable(false);

  EXPECT_EQ(off_events, on_events);
  const DeterministicView on = view(on_perf);
  EXPECT_EQ(off.epochs, on.epochs);
  EXPECT_EQ(off.ev_sum, on.ev_sum);
  EXPECT_EQ(off.adv_sum, on.adv_sum);
  EXPECT_EQ(off.place_events, on.place_events);
  // With the profiler on, wall-clock fields fill in.
  double work = 0.0;
  for (const auto& pl : on_perf.places) work += pl.work_s;
  EXPECT_GT(work, 0.0);
  // ...and the engine's counter samples landed in the telemetry layer.
  bool saw_epoch_counter = false;
  const auto counters =
      runtime::Telemetry::instance().local_buffer().counters();
  for (const auto& c : counters) {
    if (std::strcmp(c.name, "epoch.events") == 0) saw_epoch_counter = true;
  }
  EXPECT_TRUE(saw_epoch_counter);
}

TEST_F(EnginePerfTest, ImbalanceIsBalancedForSymmetricLoad) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(1);
  eng.add_place(a, "a");
  eng.add_place(b, "b");
  struct Tick {
    Simulation* sim;
    void arm() {
      sim->in(milliseconds(1), [this] { arm(); });
    }
  };
  Tick ta{&a};
  Tick tb{&b};
  a.at(kTimeZero, [&] { ta.arm(); });
  b.at(kTimeZero, [&] { tb.arm(); });
  eng.run_until(milliseconds(100));
  const ShardEnginePerf perf = eng.perf();
  // Identical per-place load: the busiest place's share equals the mean.
  EXPECT_GT(perf.imbalance_pct.count(), 0u);
  EXPECT_LE(perf.imbalance_pct.max(), 128u);  // ~100, log-bucket resolution
  // No edges: min_lookahead reports 0 rather than a bogus sentinel.
  EXPECT_EQ(perf.min_lookahead, 0);
}

}  // namespace
}  // namespace emptcp::sim
