// Partition: the place/shard map and the lookahead matrix the conservative
// engine synchronises on. The invariants here are load-bearing for
// correctness (a zero window deadlocks the engine) and for determinism
// (owner() must be a pure function of place and shard count).
#include "sim/partition.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace emptcp::sim {
namespace {

TEST(PartitionTest, PlacesGetDenseIdsAndNames) {
  Partition p;
  EXPECT_EQ(p.add_place("a"), 0u);
  EXPECT_EQ(p.add_place("b"), 1u);
  EXPECT_EQ(p.place_count(), 2u);
  EXPECT_EQ(p.place_name(0), "a");
  EXPECT_EQ(p.place_name(1), "b");
}

TEST(PartitionTest, LookaheadMatrixTracksPairwiseMinima) {
  Partition p;
  p.add_place("a");
  p.add_place("b");
  p.add_place("c");
  p.add_edge(0, 1, milliseconds(10));
  p.add_edge(0, 1, milliseconds(4));  // parallel edge tightens the pair
  p.add_edge(1, 2, milliseconds(7));

  EXPECT_EQ(p.lookahead(0, 1), milliseconds(4));
  EXPECT_EQ(p.lookahead(1, 2), milliseconds(7));
  EXPECT_EQ(p.lookahead(1, 0), kTimeNever);  // directed: no reverse edge
  EXPECT_EQ(p.lookahead(0, 2), kTimeNever);  // no transitive coupling
  EXPECT_EQ(p.min_lookahead(), milliseconds(4));
}

TEST(PartitionTest, NoEdgesMeansUnboundedWindow) {
  Partition p;
  p.add_place("a");
  p.add_place("b");
  EXPECT_EQ(p.min_lookahead(), kTimeNever);
  EXPECT_EQ(p.lookahead(0, 1), kTimeNever);
}

TEST(PartitionTest, ZeroOrNegativeLookaheadIsRejectedLoudly) {
  Partition p;
  p.add_place("a");
  p.add_place("b");
  EXPECT_THROW(p.add_edge(0, 1, 0), std::invalid_argument);
  EXPECT_THROW(p.add_edge(0, 1, -milliseconds(1)), std::invalid_argument);
  const std::size_t e = p.add_edge(0, 1, milliseconds(5));
  EXPECT_THROW(p.update_edge_lookahead(e, 0), std::invalid_argument);
  // A rejected update must leave the matrix untouched.
  EXPECT_EQ(p.lookahead(0, 1), milliseconds(5));
  EXPECT_EQ(p.min_lookahead(), milliseconds(5));
}

TEST(PartitionTest, UnknownPlaceIdsAreRejected) {
  Partition p;
  p.add_place("a");
  EXPECT_THROW(p.add_edge(0, 1, milliseconds(1)), std::out_of_range);
  EXPECT_THROW(p.add_edge(7, 0, milliseconds(1)), std::out_of_range);
}

TEST(PartitionTest, UpdateRecomputesMatrixAndGlobalMinimum) {
  Partition p;
  p.add_place("a");
  p.add_place("b");
  const std::size_t e01 = p.add_edge(0, 1, milliseconds(3));
  p.add_edge(1, 0, milliseconds(8));

  // Raising the tightest edge must re-derive the minimum from scratch,
  // not keep the stale incremental value.
  p.update_edge_lookahead(e01, milliseconds(20));
  EXPECT_EQ(p.lookahead(0, 1), milliseconds(20));
  EXPECT_EQ(p.min_lookahead(), milliseconds(8));

  p.update_edge_lookahead(e01, milliseconds(2));
  EXPECT_EQ(p.min_lookahead(), milliseconds(2));
  EXPECT_EQ(p.edge(e01).lookahead, milliseconds(2));
}

TEST(PartitionTest, OwnerIsPureRoundRobin) {
  for (std::size_t place = 0; place < 16; ++place) {
    EXPECT_EQ(Partition::owner(place, 1), 0u);
    EXPECT_EQ(Partition::owner(place, 4), place % 4);
  }
  // shard_count 0 must not divide by zero.
  EXPECT_EQ(Partition::owner(3, 0), 0u);
}

}  // namespace
}  // namespace emptcp::sim
