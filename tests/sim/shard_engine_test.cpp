// ShardEngine: conservative barrier-synchronous execution of partitioned
// simulations. The contracts under test, in rough order of importance:
// messages arrive as events at exactly their posted timestamp; delivery
// order under simultaneous timestamps is fixed by (time, edge, seq);
// results are identical for any shard count; idle stretches are skipped in
// one epoch; lookahead-contract violations throw instead of corrupting
// timestamp order.
#include "sim/shard_engine.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

#include "sim/simulation.hpp"

namespace emptcp::sim {
namespace {

/// Records every delivery: the message timestamp, the destination clock at
/// delivery, and the payload (an int).
struct RecordingSink : CrossSink {
  struct Rec {
    Time t = 0;
    Time delivered_at = 0;
    int value = 0;
  };
  Simulation* sim = nullptr;
  std::vector<Rec> recs;

  void on_cross_message(Time t, const void* data, std::size_t size) override {
    Rec r;
    r.t = t;
    r.delivered_at = sim->now();
    if (size == sizeof(int)) std::memcpy(&r.value, data, sizeof(int));
    recs.push_back(r);
  }
};

/// Posts `value` on `edge` stamped now + the edge's effective lookahead —
/// the same discipline net::CrossShardLink uses.
void post_now(ShardEngine& eng, Simulation& src, std::size_t edge,
              int value) {
  const Time t = src.now() + eng.partition().edge(edge).lookahead;
  eng.post(edge, t, &value, sizeof(value));
}

TEST(ShardEngineTest, CrossMessageArrivesAtExactTimestamp) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(2);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  const std::size_t e =
      eng.add_edge(pa, pb, milliseconds(10), sink, sizeof(int));

  a.at(milliseconds(5), [&] { post_now(eng, a, e, 42); });
  eng.run_until(seconds(1));

  ASSERT_EQ(sink.recs.size(), 1u);
  EXPECT_EQ(sink.recs[0].t, milliseconds(15));
  EXPECT_EQ(sink.recs[0].delivered_at, milliseconds(15));
  EXPECT_EQ(sink.recs[0].value, 42);
  EXPECT_EQ(eng.cross_messages(), 1u);
  // Both clocks landed on the stop time.
  EXPECT_EQ(eng.now(), seconds(1));
  EXPECT_EQ(a.now(), seconds(1));
  EXPECT_EQ(b.now(), seconds(1));
}

TEST(ShardEngineTest, SimultaneousTimestampsDrainInEdgeThenSeqOrder) {
  Simulation a(1);
  Simulation b(2);
  Simulation c(3);
  ShardEngine eng(3);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  const std::size_t pc = eng.add_place(c, "c");
  RecordingSink sink;
  sink.sim = &c;
  const std::size_t ea =
      eng.add_edge(pa, pc, milliseconds(10), sink, sizeof(int));
  const std::size_t eb =
      eng.add_edge(pb, pc, milliseconds(10), sink, sizeof(int));
  ASSERT_LT(ea, eb);

  // Both sources post for the same delivery instant; A posts twice from
  // one event (seq order within the edge).
  a.at(kTimeZero, [&] {
    const int first = 101;
    const int second = 102;
    eng.post(ea, milliseconds(10), &first, sizeof(first));
    eng.post(ea, milliseconds(10), &second, sizeof(second));
  });
  b.at(kTimeZero, [&] {
    const int v = 201;
    eng.post(eb, milliseconds(10), &v, sizeof(v));
  });
  eng.run_until(seconds(1));

  ASSERT_EQ(sink.recs.size(), 3u);
  EXPECT_EQ(sink.recs[0].value, 101);  // lower edge id first
  EXPECT_EQ(sink.recs[1].value, 102);  // then posting order within the edge
  EXPECT_EQ(sink.recs[2].value, 201);
  for (const auto& r : sink.recs) EXPECT_EQ(r.delivered_at, milliseconds(10));
}

/// Ping-pong harness: each delivery re-posts on the reverse edge until the
/// shared hop budget runs out. Used to compare executions across shard
/// counts.
struct PingPong : CrossSink {
  ShardEngine* eng = nullptr;
  Simulation* sim = nullptr;
  std::size_t reverse_edge = 0;
  int* budget = nullptr;
  std::vector<std::pair<Time, int>>* log = nullptr;

  void on_cross_message(Time /*t*/, const void* data,
                        std::size_t size) override {
    int v = 0;
    if (size == sizeof(int)) std::memcpy(&v, data, sizeof(int));
    log->emplace_back(sim->now(), v);
    if (*budget > 0) {
      --*budget;
      const int next = v + 1;
      const Time t =
          sim->now() + eng->partition().edge(reverse_edge).lookahead;
      eng->post(reverse_edge, t, &next, sizeof(next));
    }
  }
};

std::vector<std::pair<Time, int>> run_ping_pong(std::size_t shards) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(shards);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");

  int budget = 20;
  std::vector<std::pair<Time, int>> log;
  PingPong on_b;  // receives a -> b, replies on b -> a
  PingPong on_a;  // receives b -> a, replies on a -> b
  // Asymmetric lookaheads so the window is set by one edge and the reply
  // path exercises the other.
  const std::size_t ab =
      eng.add_edge(pa, pb, milliseconds(3), on_b, sizeof(int));
  const std::size_t ba =
      eng.add_edge(pb, pa, milliseconds(7), on_a, sizeof(int));
  on_b.eng = &eng;
  on_b.sim = &b;
  on_b.reverse_edge = ba;
  on_b.budget = &budget;
  on_b.log = &log;
  on_a.eng = &eng;
  on_a.sim = &a;
  on_a.reverse_edge = ab;
  on_a.budget = &budget;
  on_a.log = &log;

  a.at(milliseconds(1), [&] { post_now(eng, a, ab, 0); });
  eng.run_until(seconds(10));
  return log;
}

TEST(ShardEngineTest, ExecutionIsIdenticalForAnyShardCount) {
  const auto one = run_ping_pong(1);
  const auto two = run_ping_pong(2);
  const auto four = run_ping_pong(4);
  ASSERT_EQ(one.size(), 21u);  // initial message + 20 budgeted replies
  EXPECT_EQ(one, two);
  EXPECT_EQ(one, four);
  // Spot-check the schedule itself: hop k lands at 1ms + ceil(k/2)*(3+7)ms
  // alternating the 3 ms and 7 ms legs.
  EXPECT_EQ(one[0], (std::pair<Time, int>{milliseconds(4), 0}));
  EXPECT_EQ(one[1], (std::pair<Time, int>{milliseconds(11), 1}));
  EXPECT_EQ(one[2], (std::pair<Time, int>{milliseconds(14), 2}));
}

TEST(ShardEngineTest, IdleStretchesAreSkippedInOneEpoch) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(2);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  eng.add_edge(pa, pb, milliseconds(1), sink, sizeof(int));

  int fired = 0;
  a.at(kTimeZero, [&] { ++fired; });
  a.at(seconds(3600), [&] { ++fired; });  // one hour of nothing in between
  eng.run_until(seconds(7200));

  EXPECT_EQ(fired, 2);
  // A naive fixed-window loop would need 3600s / 1ms = 3.6M epochs; the
  // earliest-event scan must cover the gap in a handful.
  EXPECT_LE(eng.epochs(), 4u);
}

TEST(ShardEngineTest, SinglePlaceWithoutEdgesRunsInOneEpoch) {
  Simulation a(1);
  ShardEngine eng(1);
  eng.add_place(a, "solo");
  int fired = 0;
  a.at(milliseconds(1), [&] { ++fired; });
  a.at(milliseconds(2), [&] { ++fired; });
  const std::size_t executed = eng.run_until(seconds(1));
  EXPECT_EQ(fired, 2);
  EXPECT_GE(executed, 2u);
  EXPECT_EQ(eng.epochs(), 1u);
  EXPECT_EQ(eng.now(), seconds(1));
}

TEST(ShardEngineTest, DoneAtBarrierStopsEarly) {
  Simulation a(1);
  ShardEngine eng(1);
  eng.add_place(a, "a");
  // Without edges the first epoch runs to the stop bound, so completion
  // predicates are only consulted between epochs — give the topology an
  // edge to bound the window.
  Simulation b(2);
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  eng.add_edge(0, pb, milliseconds(5), sink, sizeof(int));

  int count = 0;
  for (int i = 1; i <= 100; ++i) {
    a.at(milliseconds(i), [&] { ++count; });
  }
  eng.run_until(seconds(1), [&] { return count >= 10; });
  EXPECT_GE(count, 10);
  EXPECT_LT(count, 100);  // stopped well before the stop time
  EXPECT_LT(eng.now(), seconds(1));
}

TEST(ShardEngineTest, PostBeforeFirstRunThrows) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(1);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  const std::size_t e =
      eng.add_edge(pa, pb, milliseconds(1), sink, sizeof(int));
  const int v = 1;
  EXPECT_THROW(eng.post(e, milliseconds(1), &v, sizeof(v)),
               std::logic_error);
}

TEST(ShardEngineTest, LookaheadContractViolationThrowsLoudly) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(2);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  const std::size_t e =
      eng.add_edge(pa, pb, milliseconds(10), sink, sizeof(int));

  // The event claims a 10 ms lookahead but posts for "now" — inside the
  // window other places are concurrently executing.
  a.at(milliseconds(5), [&] {
    const int v = 7;
    eng.post(e, a.now(), &v, sizeof(v));
  });
  EXPECT_THROW(eng.run_until(seconds(1)), std::logic_error);
}

TEST(ShardEngineTest, OversizedMessageThrowsAtDrain) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(2);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  const std::size_t e = eng.add_edge(pa, pb, milliseconds(1), sink, 4);

  a.at(kTimeZero, [&] {
    const unsigned char big[16] = {};
    eng.post(e, milliseconds(1), big, sizeof(big));
  });
  EXPECT_THROW(eng.run_until(seconds(1)), std::length_error);
}

TEST(ShardEngineTest, LookaheadUpdateValidatedNowAppliedAtBarrier) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(2);
  const std::size_t pa = eng.add_place(a, "a");
  const std::size_t pb = eng.add_place(b, "b");
  RecordingSink sink;
  sink.sim = &b;
  const std::size_t e =
      eng.add_edge(pa, pb, milliseconds(10), sink, sizeof(int));

  // Zero/negative updates are rejected immediately, pre- or mid-run.
  EXPECT_THROW(eng.request_lookahead_update(e, 0), std::invalid_argument);

  // Pre-start updates take effect immediately.
  eng.request_lookahead_update(e, milliseconds(4));
  EXPECT_EQ(eng.partition().edge(e).lookahead, milliseconds(4));

  // Mid-run updates land at the epoch barrier; by the end of the run the
  // partition reflects the new bound and messages posted under it arrive.
  a.at(milliseconds(1), [&] {
    eng.request_lookahead_update(e, milliseconds(20));
  });
  a.at(seconds(1), [&] { post_now(eng, a, e, 9); });
  eng.run_until(seconds(2));
  EXPECT_EQ(eng.partition().edge(e).lookahead, milliseconds(20));
  ASSERT_EQ(sink.recs.size(), 1u);
  EXPECT_EQ(sink.recs[0].delivered_at, seconds(1) + milliseconds(20));
}

TEST(ShardEngineTest, TopologyFreezesAfterFirstRun) {
  Simulation a(1);
  Simulation b(2);
  ShardEngine eng(1);
  eng.add_place(a, "a");
  eng.run_until(milliseconds(1));
  EXPECT_THROW(eng.add_place(b, "late"), std::logic_error);
}

}  // namespace
}  // namespace emptcp::sim
