#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace emptcp::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), kTimeZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(milliseconds(10), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, RunUntilStopsAtDeadlineInclusive) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(milliseconds(10), [&] { ++fired; });
  s.schedule_at(milliseconds(20), [&] { ++fired; });
  s.schedule_at(milliseconds(21), [&] { ++fired; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), milliseconds(20));
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(SchedulerTest, RunUntilAdvancesClockWithoutEvents) {
  Scheduler s;
  s.run_until(seconds(5));
  EXPECT_EQ(s.now(), seconds(5));
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int count = 0;
  s.schedule_at(milliseconds(1), [&] {
    ++count;
    s.schedule_in(milliseconds(1), [&] { ++count; });
  });
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), milliseconds(2));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(id.pending());
  Scheduler::cancel(id);
  EXPECT_FALSE(id.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeOnEmptyHandle) {
  Scheduler s;
  EventId empty;
  Scheduler::cancel(empty);  // no-op
  EventId id = s.schedule_at(milliseconds(1), [] {});
  Scheduler::cancel(id);
  Scheduler::cancel(id);  // second cancel is a no-op
  s.run();
}

TEST(SchedulerTest, PendingReflectsFiredState) {
  Scheduler s;
  EventId id = s.schedule_at(milliseconds(1), [] {});
  EXPECT_TRUE(id.pending());
  s.run();
  EXPECT_FALSE(id.pending());
}

TEST(SchedulerTest, SchedulingInPastThrows) {
  Scheduler s;
  s.schedule_at(milliseconds(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(milliseconds(5), [] {}), std::logic_error);
}

TEST(SchedulerTest, ReturnsExecutedCount) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(milliseconds(i), [] {});
  EXPECT_EQ(s.run(), 7u);
}

TEST(SchedulerTest, EventLimitGuardsRunawayLoops) {
  Scheduler s;
  s.set_event_limit(100);
  std::function<void()> loop = [&] { s.schedule_in(1, loop); };
  s.schedule_at(0, loop);
  EXPECT_THROW(s.run(), std::runtime_error);
}

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(2), milliseconds(2000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(250)), 250.0);
}

}  // namespace
}  // namespace emptcp::sim
