#include "sim/event.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace emptcp::sim {
namespace {

TEST(SchedulerTest, StartsAtTimeZero) {
  Scheduler s;
  EXPECT_EQ(s.now(), kTimeZero);
  EXPECT_EQ(s.pending_events(), 0u);
}

TEST(SchedulerTest, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(milliseconds(30), [&] { order.push_back(3); });
  s.schedule_at(milliseconds(10), [&] { order.push_back(1); });
  s.schedule_at(milliseconds(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), milliseconds(30));
}

TEST(SchedulerTest, TiesBreakByInsertionOrder) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.schedule_at(milliseconds(10), [&order, i] { order.push_back(i); });
  }
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, RunUntilStopsAtDeadlineInclusive) {
  Scheduler s;
  int fired = 0;
  s.schedule_at(milliseconds(10), [&] { ++fired; });
  s.schedule_at(milliseconds(20), [&] { ++fired; });
  s.schedule_at(milliseconds(21), [&] { ++fired; });
  s.run_until(milliseconds(20));
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(s.now(), milliseconds(20));
  s.run();
  EXPECT_EQ(fired, 3);
}

TEST(SchedulerTest, RunUntilAdvancesClockWithoutEvents) {
  Scheduler s;
  s.run_until(seconds(5));
  EXPECT_EQ(s.now(), seconds(5));
}

TEST(SchedulerTest, EventsScheduledDuringRunExecute) {
  Scheduler s;
  int count = 0;
  s.schedule_at(milliseconds(1), [&] {
    ++count;
    s.schedule_in(milliseconds(1), [&] { ++count; });
  });
  s.run();
  EXPECT_EQ(count, 2);
  EXPECT_EQ(s.now(), milliseconds(2));
}

TEST(SchedulerTest, CancelPreventsExecution) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(milliseconds(10), [&] { ++fired; });
  EXPECT_TRUE(id.pending());
  Scheduler::cancel(id);
  EXPECT_FALSE(id.pending());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(SchedulerTest, CancelIsIdempotentAndSafeOnEmptyHandle) {
  Scheduler s;
  EventId empty;
  Scheduler::cancel(empty);  // no-op
  EventId id = s.schedule_at(milliseconds(1), [] {});
  Scheduler::cancel(id);
  Scheduler::cancel(id);  // second cancel is a no-op
  s.run();
}

TEST(SchedulerTest, PendingReflectsFiredState) {
  Scheduler s;
  EventId id = s.schedule_at(milliseconds(1), [] {});
  EXPECT_TRUE(id.pending());
  s.run();
  EXPECT_FALSE(id.pending());
}

TEST(SchedulerTest, SchedulingInPastThrows) {
  Scheduler s;
  s.schedule_at(milliseconds(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(milliseconds(5), [] {}), std::logic_error);
}

TEST(SchedulerTest, ReturnsExecutedCount) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(milliseconds(i), [] {});
  EXPECT_EQ(s.run(), 7u);
}

TEST(SchedulerTest, EventLimitGuardsRunawayLoops) {
  Scheduler s;
  s.set_event_limit(100);
  std::function<void()> loop = [&] { s.schedule_in(1, loop); };
  s.schedule_at(0, loop);
  EXPECT_THROW(s.run(), std::runtime_error);
}

// --- Slab scheduler regression tests ---------------------------------------

TEST(SchedulerTest, DeterministicOrderWithInterleavedCancels) {
  // The same schedule/cancel sequence must produce the same execution
  // order on every run — ties by insertion sequence, cancelled events
  // skipped without perturbing their neighbours' order.
  auto run_once = [] {
    Scheduler s;
    std::vector<int> order;
    std::vector<EventId> ids;
    for (int i = 0; i < 50; ++i) {
      // Many ties: times cycle through 5 values.
      ids.push_back(s.schedule_at(milliseconds(i % 5),
                                  [&order, i] { order.push_back(i); }));
    }
    for (int i = 0; i < 50; i += 3) Scheduler::cancel(ids[i]);
    s.run();
    return order;
  };
  const std::vector<int> first = run_once();
  EXPECT_EQ(first.size(), 33u);  // 17 of 50 cancelled
  // Within each time bucket, insertion order; buckets in time order.
  for (std::size_t k = 1; k < first.size(); ++k) {
    if (first[k - 1] % 5 == first[k] % 5) {
      EXPECT_LT(first[k - 1], first[k]);
    }
  }
  EXPECT_EQ(run_once(), first);
}

TEST(SchedulerTest, CancelAfterFireIsNoOp) {
  Scheduler s;
  int fired = 0;
  EventId id = s.schedule_at(milliseconds(1), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(id.pending());
  Scheduler::cancel(id);  // stale: the event already fired
  s.schedule_at(milliseconds(2), [&] { ++fired; });
  s.run();
  EXPECT_EQ(fired, 2);
}

TEST(SchedulerTest, StaleHandleCannotCancelSlotReuser) {
  // After an event fires, its slab slot is reused by the next scheduled
  // event. A stale handle to the fired event must not cancel (or report
  // pending for) the unrelated event now occupying the slot.
  Scheduler s;
  EventId stale = s.schedule_at(milliseconds(1), [] {});
  s.run();
  int fired = 0;
  EventId fresh = s.schedule_at(milliseconds(2), [&] { ++fired; });
  EXPECT_FALSE(stale.pending());
  Scheduler::cancel(stale);  // must not touch the reused slot
  EXPECT_TRUE(fresh.pending());
  s.run();
  EXPECT_EQ(fired, 1);
}

TEST(SchedulerTest, SlabSlotsAreReusedUnderChurn) {
  // Steady-state schedule/fire churn must recycle slots through the
  // freelist instead of growing the slab without bound.
  Scheduler s;
  constexpr int kBatch = 100;
  for (int round = 0; round < 50; ++round) {
    const Time base = s.now();
    for (int i = 0; i < kBatch; ++i) {
      s.schedule_at(base + i + 1, [] {});
    }
    s.run();
  }
  // At most one batch is ever live at once; the slab may round up to its
  // chunk granularity but must not keep growing across rounds.
  EXPECT_LE(s.slab_size(), 256u);
}

TEST(SchedulerTest, CancelledSlotsAreRecycled) {
  Scheduler s;
  for (int round = 0; round < 20; ++round) {
    std::vector<EventId> ids;
    const Time base = s.now();
    for (int i = 0; i < 50; ++i) {
      ids.push_back(s.schedule_at(base + i + 1, [] {}));
    }
    for (EventId& id : ids) Scheduler::cancel(id);
    s.run();  // pops the cancelled entries, releasing their slots
  }
  EXPECT_LE(s.slab_size(), 256u);
}

TEST(TimeTest, ConversionsRoundTrip) {
  EXPECT_EQ(seconds(2), milliseconds(2000));
  EXPECT_EQ(milliseconds(1), microseconds(1000));
  EXPECT_DOUBLE_EQ(to_seconds(seconds(3)), 3.0);
  EXPECT_EQ(from_seconds(1.5), milliseconds(1500));
  EXPECT_DOUBLE_EQ(to_milliseconds(milliseconds(250)), 250.0);
}

}  // namespace
}  // namespace emptcp::sim
