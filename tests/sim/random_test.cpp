#include "sim/random.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace emptcp::sim {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(a.uniform(), b.uniform());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.uniform() == b.uniform()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformRespectsBounds) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = r.uniform(2.0, 5.0);
    EXPECT_GE(x, 2.0);
    EXPECT_LT(x, 5.0);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng r(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto x = r.uniform_int(1, 4);
    EXPECT_GE(x, 1);
    EXPECT_LE(x, 4);
    saw_lo |= x == 1;
    saw_hi |= x == 4;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng r(99);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) sum += r.exponential(40.0);
  const double mean = sum / n;
  EXPECT_NEAR(mean, 40.0, 1.5);
}

TEST(RngTest, ChanceEdgeCases) {
  Rng r(3);
  for (int i = 0; i < 50; ++i) {
    EXPECT_FALSE(r.chance(0.0));
    EXPECT_TRUE(r.chance(1.0));
    EXPECT_FALSE(r.chance(-0.5));
    EXPECT_TRUE(r.chance(1.5));
  }
}

TEST(RngTest, ChanceFrequencyTracksProbability) {
  Rng r(5);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) hits += r.chance(0.25) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.02);
}

TEST(RngTest, ReseedReproducesSequence) {
  Rng r(11);
  std::vector<double> first;
  for (int i = 0; i < 10; ++i) first.push_back(r.uniform());
  r.seed(11);
  for (int i = 0; i < 10; ++i) EXPECT_DOUBLE_EQ(r.uniform(), first[i]);
}

}  // namespace
}  // namespace emptcp::sim
