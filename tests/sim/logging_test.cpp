#include "sim/logging.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "sim/simulation.hpp"

namespace emptcp::sim {
namespace {

TEST(LoggerTest, OffByDefault) {
  Logger log;
  EXPECT_EQ(log.level(), LogLevel::kOff);
  EXPECT_FALSE(log.enabled(LogLevel::kWarn));
}

TEST(LoggerTest, LevelFiltering) {
  Logger log;
  log.set_level(LogLevel::kInfo);
  EXPECT_FALSE(log.enabled(LogLevel::kTrace));
  EXPECT_FALSE(log.enabled(LogLevel::kDebug));
  EXPECT_TRUE(log.enabled(LogLevel::kInfo));
  EXPECT_TRUE(log.enabled(LogLevel::kWarn));
}

TEST(LoggerTest, SinkReceivesMessages) {
  Logger log;
  log.set_level(LogLevel::kDebug);
  std::vector<std::string> messages;
  log.set_sink([&](LogLevel, Time, const std::string& msg) {
    messages.push_back(msg);
  });
  log.log(LogLevel::kInfo, seconds(1), "hello");
  log.log(LogLevel::kTrace, seconds(2), "filtered");
  ASSERT_EQ(messages.size(), 1u);
  EXPECT_EQ(messages[0], "hello");
}

TEST(LoggerTest, MacroOnlyEvaluatesWhenEnabled) {
  Simulation sim(1);
  int evaluations = 0;
  auto expensive = [&] {
    ++evaluations;
    return 42;
  };
  EMPTCP_LOG(sim, LogLevel::kInfo, "value=" << expensive());
  EXPECT_EQ(evaluations, 0);  // logger off: expression not evaluated

  sim.logger().set_level(LogLevel::kInfo);
  std::vector<std::string> got;
  sim.logger().set_sink([&](LogLevel, Time, const std::string& m) {
    got.push_back(m);
  });
  EMPTCP_LOG(sim, LogLevel::kInfo, "value=" << expensive());
  EXPECT_EQ(evaluations, 1);
  ASSERT_EQ(got.size(), 1u);
  EXPECT_EQ(got[0], "value=42");
}

TEST(LoggerTest, MessageCarriesSimulationTime) {
  Simulation sim(1);
  sim.logger().set_level(LogLevel::kDebug);
  Time seen = -1;
  sim.logger().set_sink(
      [&](LogLevel, Time t, const std::string&) { seen = t; });
  sim.in(milliseconds(250), [&] {
    EMPTCP_LOG(sim, LogLevel::kInfo, "tick");
  });
  sim.run();
  EXPECT_EQ(seen, milliseconds(250));
}

}  // namespace
}  // namespace emptcp::sim
