#include "sim/timer.hpp"

#include <gtest/gtest.h>

#include <memory>

namespace emptcp::sim {
namespace {

TEST(TimerTest, FiresAtDeadline) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm_in(milliseconds(50));
  EXPECT_TRUE(t.armed());
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(t.armed());
  EXPECT_EQ(s.now(), milliseconds(50));
}

TEST(TimerTest, RearmReplacesDeadline) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm_in(milliseconds(50));
  t.arm_in(milliseconds(10));  // replaces, does not add
  s.run();
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(s.now(), milliseconds(10));
}

TEST(TimerTest, CancelPreventsFiring) {
  Scheduler s;
  int fired = 0;
  Timer t(s, [&] { ++fired; });
  t.arm_in(milliseconds(10));
  t.cancel();
  EXPECT_FALSE(t.armed());
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, DeadlineAccessor) {
  Scheduler s;
  Timer t(s, [] {});
  EXPECT_EQ(t.deadline(), kTimeNever);
  t.arm_at(milliseconds(42));
  EXPECT_EQ(t.deadline(), milliseconds(42));
  t.cancel();
  EXPECT_EQ(t.deadline(), kTimeNever);
}

TEST(TimerTest, DestructionCancelsPendingCallback) {
  Scheduler s;
  int fired = 0;
  {
    Timer t(s, [&] { ++fired; });
    t.arm_in(milliseconds(5));
  }  // destroyed while armed
  s.run();
  EXPECT_EQ(fired, 0);
}

TEST(TimerTest, CanRearmInsideCallback) {
  Scheduler s;
  int fired = 0;
  std::unique_ptr<Timer> t;
  t = std::make_unique<Timer>(s, [&] {
    if (++fired < 3) t->arm_in(milliseconds(10));
  });
  t->arm_in(milliseconds(10));
  s.run();
  EXPECT_EQ(fired, 3);
  EXPECT_EQ(s.now(), milliseconds(30));
}

}  // namespace
}  // namespace emptcp::sim
