#include "core/holt_winters.hpp"

#include <gtest/gtest.h>

namespace emptcp::core {
namespace {

TEST(HoltWintersTest, NoForecastBeforeFirstSample) {
  HoltWinters hw;
  EXPECT_FALSE(hw.has_forecast());
  EXPECT_THROW(hw.forecast(), std::logic_error);
}

TEST(HoltWintersTest, FirstSampleIsTheForecast) {
  HoltWinters hw;
  hw.add(5.0);
  EXPECT_TRUE(hw.has_forecast());
  EXPECT_DOUBLE_EQ(hw.forecast(), 5.0);
}

TEST(HoltWintersTest, ConstantSeriesForecastsConstant) {
  HoltWinters hw;
  for (int i = 0; i < 50; ++i) hw.add(7.5);
  EXPECT_NEAR(hw.forecast(), 7.5, 1e-9);
  EXPECT_NEAR(hw.trend(), 0.0, 1e-9);
}

TEST(HoltWintersTest, LinearTrendExtrapolated) {
  HoltWinters hw;
  for (int i = 0; i < 100; ++i) hw.add(static_cast<double>(i));
  // Next value should be close to 100; k=2 close to 101.
  EXPECT_NEAR(hw.forecast(1), 100.0, 2.0);
  EXPECT_NEAR(hw.forecast(2), 101.0, 2.0);
}

TEST(HoltWintersTest, ForecastClampedAtZero) {
  HoltWinters hw;
  // Steeply decreasing series: raw forecast would go negative.
  for (int i = 0; i < 20; ++i) hw.add(20.0 - 2.0 * i);
  EXPECT_GE(hw.forecast(5), 0.0);
}

TEST(HoltWintersTest, TracksLevelShiftFasterThanItForgets) {
  HoltWinters hw;
  for (int i = 0; i < 30; ++i) hw.add(1.0);
  for (int i = 0; i < 10; ++i) hw.add(10.0);
  // After 10 samples at the new level, forecast should be mostly there.
  EXPECT_GT(hw.forecast(), 8.0);
}

TEST(HoltWintersTest, MoreAccurateThanLastSampleOnTrendedSeries) {
  // The paper's reason for Holt-Winters: beats naive predictors on
  // trending bandwidth. Compare one-step-ahead squared error.
  HoltWinters hw;
  double hw_err = 0.0;
  double naive_err = 0.0;
  double prev = 0.0;
  for (int i = 0; i < 200; ++i) {
    const double x = 0.1 * i + ((i % 7) - 3) * 0.05;  // trend + ripple
    if (i > 0) {
      const double e_hw = hw.forecast() - x;
      const double e_naive = prev - x;
      hw_err += e_hw * e_hw;
      naive_err += e_naive * e_naive;
    }
    hw.add(x);
    prev = x;
  }
  EXPECT_LT(hw_err, naive_err);
}

TEST(HoltWintersTest, ResetClearsState) {
  HoltWinters hw;
  hw.add(3.0);
  hw.add(4.0);
  hw.reset();
  EXPECT_FALSE(hw.has_forecast());
  EXPECT_EQ(hw.count(), 0u);
}

TEST(HoltWintersTest, InvalidSmoothingFactorsThrow) {
  EXPECT_THROW(HoltWinters({0.0, 0.3}), std::invalid_argument);
  EXPECT_THROW(HoltWinters({1.5, 0.3}), std::invalid_argument);
  EXPECT_THROW(HoltWinters({0.5, -0.1}), std::invalid_argument);
  EXPECT_THROW(HoltWinters({0.5, 1.1}), std::invalid_argument);
  EXPECT_NO_THROW(HoltWinters({1.0, 0.0}));
}

}  // namespace
}  // namespace emptcp::core
