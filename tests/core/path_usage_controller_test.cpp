#include "core/path_usage_controller.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "energy/device_profile.hpp"
#include "sim/simulation.hpp"

namespace emptcp::core {
namespace {

/// An unsampled predictor sits at its 5 Mbps prior for both interfaces,
/// which pins the controller's inputs; the EIB generated from the Galaxy
/// S3 model puts the WiFi-only threshold at cell=5 Mbps around 3.1 Mbps.
/// Tests exploit these fixed points; the full dynamic behaviour (suspend
/// on good WiFi, resume on bad) is covered by the integration tests.
struct Harness {
  Harness()
      : eib(EnergyInfoBase::generate(
            energy::DeviceProfile::galaxy_s3().model())),
        predictor(sim, BandwidthPredictor::Config{}) {}

  PathUsageController make(PathUsageController::Config cfg,
                           std::vector<std::pair<PathUsage, PathUsage>>* log) {
    return PathUsageController(
        sim, eib, predictor, cfg,
        [log](PathUsage a, PathUsage b) {
          if (log != nullptr) log->emplace_back(a, b);
        });
  }

  sim::Simulation sim;
  EnergyInfoBase eib;
  BandwidthPredictor predictor;
};

TEST(PathUsageControllerTest, StableAtPriorPrediction) {
  // Both interfaces predicted at the 5 Mbps prior: the EIB says the
  // WiFi-only threshold at cell=5 is ~3.1 Mbps, so 5 Mbps WiFi means
  // WiFi-only is the steady answer; starting from kBoth the controller
  // must switch exactly once and then hold.
  Harness h;
  std::vector<std::pair<PathUsage, PathUsage>> log;
  auto ctrl = h.make(PathUsageController::Config{}, &log);
  ctrl.start(PathUsage::kBoth);
  h.sim.run_until(sim::seconds(10));
  ASSERT_EQ(log.size(), 1u);
  EXPECT_EQ(log[0].first, PathUsage::kBoth);
  EXPECT_EQ(log[0].second, PathUsage::kWifiOnly);
  EXPECT_EQ(ctrl.current(), PathUsage::kWifiOnly);
  EXPECT_EQ(ctrl.switch_count(), 1u);
}

TEST(PathUsageControllerTest, StopHaltsDecisions) {
  Harness h;
  std::vector<std::pair<PathUsage, PathUsage>> log;
  auto ctrl = h.make(PathUsageController::Config{}, &log);
  ctrl.start(PathUsage::kBoth);
  ctrl.stop();
  h.sim.run_until(sim::seconds(10));
  EXPECT_TRUE(log.empty());
}

TEST(PathUsageControllerTest, HysteresisWindowHoldsState) {
  // With a huge safety factor nothing can cross the margins, so the
  // controller never leaves its initial state.
  Harness h;
  PathUsageController::Config cfg;
  cfg.safety_factor = 100.0;
  std::vector<std::pair<PathUsage, PathUsage>> log;
  auto ctrl = h.make(cfg, &log);
  ctrl.start(PathUsage::kBoth);
  h.sim.run_until(sim::seconds(10));
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(ctrl.current(), PathUsage::kBoth);
}

TEST(PathUsageControllerTest, CellOnlyDisabledByDefault) {
  // Even with WiFi predicted at ~0 (fresh predictor has prior 5, so use a
  // generated EIB whose thresholds sit above 5: a model with enormous
  // cellular power makes wifi-only dominant — inverted check: ensure the
  // default config never reports kCellOnly across a long run).
  Harness h;
  std::vector<std::pair<PathUsage, PathUsage>> log;
  auto ctrl = h.make(PathUsageController::Config{}, &log);
  ctrl.start(PathUsage::kBoth);
  h.sim.run_until(sim::seconds(30));
  for (const auto& [from, to] : log) {
    EXPECT_NE(to, PathUsage::kCellOnly);
  }
}

TEST(PathUsageControllerTest, EvaluateIsIdempotentWithoutChange) {
  Harness h;
  std::vector<std::pair<PathUsage, PathUsage>> log;
  auto ctrl = h.make(PathUsageController::Config{}, &log);
  ctrl.start(PathUsage::kWifiOnly);  // already the steady state for 5 Mbps
  for (int i = 0; i < 20; ++i) ctrl.evaluate();
  EXPECT_TRUE(log.empty());
  EXPECT_EQ(ctrl.switch_count(), 0u);
}

TEST(PathUsageControllerTest, ToStringCoversAllStates) {
  EXPECT_STREQ(to_string(PathUsage::kWifiOnly), "wifi-only");
  EXPECT_STREQ(to_string(PathUsage::kBoth), "both");
  EXPECT_STREQ(to_string(PathUsage::kCellOnly), "cell-only");
}

}  // namespace
}  // namespace emptcp::core
