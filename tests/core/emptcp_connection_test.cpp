#include "core/emptcp_connection.hpp"

#include <gtest/gtest.h>

#include "app/bulk_download.hpp"
#include "energy/device_profile.hpp"
#include "support/testnet.hpp"

namespace emptcp::core {
namespace {

using test::TestNet;

mptcp::MptcpConnection::Config mptcp_config() {
  mptcp::MptcpConnection::Config cfg;
  cfg.classify_peer = [](net::Addr a) {
    if (a == test::kWifiAddr) return net::InterfaceType::kWifi;
    if (a == test::kCellAddr) return net::InterfaceType::kLte;
    return net::InterfaceType::kEthernet;
  };
  return cfg;
}

struct EmptcpWorld {
  EmptcpWorld(double wifi_mbps, double cell_mbps, std::uint64_t file_bytes,
              EmptcpConfig cfg = {})
      : net(1, wifi_mbps, cell_mbps),
        eib(EnergyInfoBase::generate(
            energy::DeviceProfile::galaxy_s3().model())) {
    cfg.mptcp = mptcp_config();
    app::FileServer::Config scfg;
    scfg.port = test::kPort;
    scfg.resolver = [file_bytes](std::size_t, std::size_t req) {
      return req == 0 ? file_bytes : 0;
    };
    scfg.mptcp = mptcp_config();
    server = std::make_unique<app::FileServer>(net.sim, net.server,
                                               std::move(scfg));
    conn = std::make_unique<EmptcpConnection>(net.sim, net.client,
                                              std::move(cfg), eib);

    EmptcpConnection::Callbacks cb;
    cb.on_established = [this] { conn->send(200); };
    cb.on_data = [this](std::uint64_t n) { received += n; };
    cb.on_eof = [this] {
      eof = true;
      eof_at = net.sim.now();
      conn->shutdown_write();
    };
    conn->set_callbacks(std::move(cb));
  }

  void connect() {
    conn->connect(test::kWifiAddr, test::kCellAddr, test::kServerAddr,
                  test::kPort);
  }

  TestNet net;
  EnergyInfoBase eib;
  std::unique_ptr<app::FileServer> server;
  std::unique_ptr<EmptcpConnection> conn;
  std::uint64_t received = 0;
  bool eof = false;
  sim::Time eof_at = 0;
};

TEST(EmptcpConnectionTest, GoodWifiNeverEstablishesCellular) {
  // Paper Fig. 5 behaviour: with fast WiFi, eMPTCP behaves like TCP/WiFi.
  EmptcpWorld w(/*wifi=*/15.0, /*cell=*/9.0, 16'000'000);
  w.connect();
  w.net.sim.run_until(sim::seconds(60));

  EXPECT_TRUE(w.eof);
  EXPECT_EQ(w.received, 16'000'000u);
  EXPECT_FALSE(w.conn->cellular_established());
  EXPECT_EQ(w.net.cell_if->rx_bytes(), 0u);
}

TEST(EmptcpConnectionTest, BadWifiEstablishesCellularViaTau) {
  // Paper Fig. 6: with <1 Mbps WiFi the LTE subflow comes up after the
  // startup delay determined by κ and τ (τ = 3 s here, since κ = 1 MB
  // takes ~10 s at 0.8 Mbps).
  EmptcpWorld w(/*wifi=*/0.8, /*cell=*/9.0, 16'000'000);
  w.connect();

  w.net.sim.run_until(sim::seconds(2));
  EXPECT_FALSE(w.conn->cellular_established());
  w.net.sim.run_until(sim::seconds(5));
  EXPECT_TRUE(w.conn->cellular_established());

  w.net.sim.run_until(sim::seconds(120));
  EXPECT_TRUE(w.eof);
  EXPECT_EQ(w.received, 16'000'000u);
  // The bulk of the data went over LTE.
  EXPECT_GT(w.net.cell_if->rx_bytes(), w.net.wifi_if->rx_bytes());
}

TEST(EmptcpConnectionTest, SmallTransferAvoidsCellularEntirely) {
  // Paper §5.2: 256 KB over even a mediocre WiFi completes before κ or a
  // useful τ-triggered join, so the LTE radio never wakes.
  EmptcpWorld w(/*wifi=*/6.0, /*cell=*/9.0, 256 * 1024);
  w.connect();
  w.net.sim.run_until(sim::seconds(30));
  EXPECT_TRUE(w.eof);
  EXPECT_EQ(w.net.cell_if->rx_bytes(), 0u);
}

TEST(EmptcpConnectionTest, DelayedEstablishmentAblationJoinsImmediately) {
  EmptcpConfig cfg;
  cfg.enable_delayed_establishment = false;
  EmptcpWorld w(/*wifi=*/6.0, /*cell=*/9.0, 4'000'000, cfg);
  w.connect();
  w.net.sim.run_until(sim::milliseconds(500));
  EXPECT_TRUE(w.conn->cellular_established());
}

TEST(EmptcpConnectionTest, ControllerSuspendsLteWhenWifiRecovers) {
  // Start with WiFi bad enough to join LTE, then make WiFi fast: the path
  // usage controller must issue MP_PRIO(backup) and LTE traffic stops.
  EmptcpWorld w(/*wifi=*/0.8, /*cell=*/9.0, 64'000'000);
  w.connect();
  w.net.sim.run_until(sim::seconds(8));
  ASSERT_TRUE(w.conn->cellular_established());

  w.net.wifi_down->set_rate(20.0);
  w.net.wifi_up->set_rate(20.0);
  // Give the predictor and controller time to react.
  bool suspended = false;
  for (int i = 0; i < 200 && !suspended; ++i) {
    w.net.sim.run_until(w.net.sim.now() + sim::milliseconds(100));
    mptcp::Subflow* lte =
        w.conn->mptcp().subflow_on(net::InterfaceType::kLte);
    suspended = lte != nullptr && lte->backup();
  }
  EXPECT_TRUE(suspended);
  EXPECT_EQ(w.conn->controller().current(), PathUsage::kWifiOnly);
  EXPECT_GE(w.conn->controller().switch_count(), 1u);

  // LTE payload flow dries up after the suspension — after the data the
  // server had already committed to the subflow drains (the "switching
  // overhead" the paper notes in §4.4).
  w.net.sim.run_until(w.net.sim.now() + sim::seconds(3));
  const std::uint64_t rx_then = w.net.cell_if->rx_bytes();
  w.net.sim.run_until(w.net.sim.now() + sim::seconds(5));
  EXPECT_LT(w.net.cell_if->rx_bytes() - rx_then, 50'000u);
}

TEST(EmptcpConnectionTest, PathControlAblationKeepsBothActive) {
  EmptcpConfig cfg;
  cfg.enable_path_control = false;
  EmptcpWorld w(/*wifi=*/0.8, /*cell=*/9.0, 32'000'000, cfg);
  w.connect();
  w.net.sim.run_until(sim::seconds(8));
  ASSERT_TRUE(w.conn->cellular_established());
  w.net.wifi_down->set_rate(20.0);
  w.net.wifi_up->set_rate(20.0);
  w.net.sim.run_until(w.net.sim.now() + sim::seconds(20));
  mptcp::Subflow* lte = w.conn->mptcp().subflow_on(net::InterfaceType::kLte);
  ASSERT_NE(lte, nullptr);
  EXPECT_FALSE(lte->backup());
  EXPECT_EQ(w.conn->controller().switch_count(), 0u);
}

TEST(EmptcpConnectionTest, SharedPredictorAcrossConnections) {
  TestNet net(1, 10.0, 10.0);
  EnergyInfoBase eib =
      EnergyInfoBase::generate(energy::DeviceProfile::galaxy_s3().model());
  BandwidthPredictor shared(net.sim, BandwidthPredictor::Config{});

  app::FileServer::Config scfg;
  scfg.port = test::kPort;
  scfg.resolver = [](std::size_t, std::size_t req) {
    return req == 0 ? std::uint64_t{2'000'000} : 0;
  };
  scfg.mptcp = mptcp_config();
  app::FileServer server(net.sim, net.server, std::move(scfg));

  EmptcpConfig cfg;
  cfg.mptcp = mptcp_config();
  EmptcpConnection c1(net.sim, net.client, cfg, eib, &shared);
  EmptcpConnection c2(net.sim, net.client, cfg, eib, &shared);
  EmptcpConnection::Callbacks cb1;
  cb1.on_established = [&] { c1.send(200); };
  c1.set_callbacks(std::move(cb1));
  EmptcpConnection::Callbacks cb2;
  cb2.on_established = [&] { c2.send(200); };
  c2.set_callbacks(std::move(cb2));
  c1.connect(test::kWifiAddr, test::kCellAddr, test::kServerAddr,
             test::kPort);
  c2.connect(test::kWifiAddr, test::kCellAddr, test::kServerAddr,
             test::kPort);
  net.sim.run_until(sim::seconds(10));

  // One predictor saw both connections' traffic on the WiFi interface.
  EXPECT_TRUE(shared.has_measurement(net::InterfaceType::kWifi));
  EXPECT_EQ(&c1.predictor(), &shared);
  EXPECT_EQ(&c2.predictor(), &shared);
}

}  // namespace
}  // namespace emptcp::core
