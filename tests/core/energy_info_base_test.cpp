#include "core/energy_info_base.hpp"

#include <gtest/gtest.h>

#include "energy/device_profile.hpp"

namespace emptcp::core {
namespace {

energy::EnergyModel model() {
  return energy::DeviceProfile::galaxy_s3().model();
}

TEST(EnergyInfoBaseTest, GenerateProducesMonotoneRows) {
  const EnergyInfoBase eib = EnergyInfoBase::generate(model(), 10.0, 0.5);
  ASSERT_EQ(eib.rows().size(), 20u);
  for (std::size_t i = 1; i < eib.rows().size(); ++i) {
    EXPECT_GT(eib.rows()[i].cell_mbps, eib.rows()[i - 1].cell_mbps);
    EXPECT_GT(eib.rows()[i].cell_only_below,
              eib.rows()[i - 1].cell_only_below);
    EXPECT_GT(eib.rows()[i].wifi_only_at_least,
              eib.rows()[i - 1].wifi_only_at_least);
  }
}

TEST(EnergyInfoBaseTest, RowsMatchClosedFormThresholds) {
  const EnergyInfoBase eib = EnergyInfoBase::generate(model(), 10.0, 0.5);
  for (const auto& row : eib.rows()) {
    const energy::WifiThresholds t =
        energy::steady_thresholds(model(), row.cell_mbps);
    EXPECT_NEAR(row.cell_only_below, t.cell_only_below, 1e-9);
    EXPECT_NEAR(row.wifi_only_at_least, t.wifi_only_at_least, 1e-9);
  }
}

TEST(EnergyInfoBaseTest, LookupPicksRegion) {
  const EnergyInfoBase eib = EnergyInfoBase::generate(model());
  // Paper Table 2 semantics at LTE = 1 Mbps.
  const energy::WifiThresholds t = eib.thresholds_at(1.0);
  EXPECT_EQ(eib.lookup(t.cell_only_below * 0.5, 1.0),
            energy::PathChoice::kCellOnly);
  EXPECT_EQ(eib.lookup((t.cell_only_below + t.wifi_only_at_least) / 2, 1.0),
            energy::PathChoice::kBoth);
  EXPECT_EQ(eib.lookup(t.wifi_only_at_least * 1.5, 1.0),
            energy::PathChoice::kWifiOnly);
}

TEST(EnergyInfoBaseTest, InterpolatesBetweenRows) {
  const EnergyInfoBase eib = EnergyInfoBase::generate(model(), 10.0, 1.0);
  const auto t_lo = eib.thresholds_at(2.0);
  const auto t_mid = eib.thresholds_at(2.5);
  const auto t_hi = eib.thresholds_at(3.0);
  EXPECT_GT(t_mid.cell_only_below, t_lo.cell_only_below);
  EXPECT_LT(t_mid.cell_only_below, t_hi.cell_only_below);
  EXPECT_GT(t_mid.wifi_only_at_least, t_lo.wifi_only_at_least);
  EXPECT_LT(t_mid.wifi_only_at_least, t_hi.wifi_only_at_least);
}

TEST(EnergyInfoBaseTest, ClampsOutsideTable) {
  const EnergyInfoBase eib = EnergyInfoBase::generate(model(), 10.0, 0.5);
  const auto t_low = eib.thresholds_at(0.01);
  EXPECT_NEAR(t_low.cell_only_below, eib.rows().front().cell_only_below,
              1e-9);
  const auto t_high = eib.thresholds_at(99.0);
  EXPECT_NEAR(t_high.wifi_only_at_least,
              eib.rows().back().wifi_only_at_least, 1e-9);
}

TEST(EnergyInfoBaseTest, BadGridThrows) {
  EXPECT_THROW(EnergyInfoBase::generate(model(), 10.0, 0.0),
               std::invalid_argument);
  EXPECT_THROW(EnergyInfoBase::generate(model(), -1.0, 0.5),
               std::invalid_argument);
}

TEST(EnergyInfoBaseTest, FromRowsAcceptsPaperTable2) {
  // §3.3: the EIB can be populated from any external energy model. Feed
  // the paper's own Table 2 rows and check the lookups follow them.
  const EnergyInfoBase eib = EnergyInfoBase::from_rows({
      {0.5, 0.043, 0.234},
      {1.0, 0.134, 0.502},
      {1.5, 0.209, 0.803},
      {2.0, 0.304, 1.070},
  });
  EXPECT_EQ(eib.lookup(0.1, 1.0), energy::PathChoice::kCellOnly);
  EXPECT_EQ(eib.lookup(0.3, 1.0), energy::PathChoice::kBoth);
  EXPECT_EQ(eib.lookup(0.6, 1.0), energy::PathChoice::kWifiOnly);
  // Interpolation between the published rows.
  const auto t = eib.thresholds_at(1.25);
  EXPECT_GT(t.cell_only_below, 0.134);
  EXPECT_LT(t.cell_only_below, 0.209);
}

TEST(EnergyInfoBaseTest, FromRowsValidates) {
  EXPECT_THROW(EnergyInfoBase::from_rows({}), std::invalid_argument);
  // lo >= hi
  EXPECT_THROW(EnergyInfoBase::from_rows({{1.0, 0.6, 0.5}}),
               std::invalid_argument);
  // unsorted
  EXPECT_THROW(EnergyInfoBase::from_rows(
                   {{2.0, 0.3, 1.0}, {1.0, 0.1, 0.5}}),
               std::invalid_argument);
  // non-positive index
  EXPECT_THROW(EnergyInfoBase::from_rows({{0.0, 0.1, 0.5}}),
               std::invalid_argument);
}

TEST(EnergyInfoBaseTest, FromCsvRoundTrip) {
  const EnergyInfoBase eib = EnergyInfoBase::from_csv(
      "cell_mbps,cell_only_below,wifi_only_at_least\n"
      "0.5,0.043,0.234\n"
      "1.0,0.134,0.502\n");
  ASSERT_EQ(eib.rows().size(), 2u);
  EXPECT_DOUBLE_EQ(eib.rows()[1].cell_only_below, 0.134);
  // Headerless input also parses.
  const EnergyInfoBase bare = EnergyInfoBase::from_csv("1.0,0.1,0.5\n");
  ASSERT_EQ(bare.rows().size(), 1u);
  // Malformed input throws.
  EXPECT_THROW(EnergyInfoBase::from_csv("1.0;0.1;0.5\n"),
               std::invalid_argument);
}

TEST(EnergyInfoBaseTest, EmptyTableLookupThrows) {
  EnergyInfoBase eib;
  EXPECT_THROW(eib.thresholds_at(1.0), std::logic_error);
}

}  // namespace
}  // namespace emptcp::core
