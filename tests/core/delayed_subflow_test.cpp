#include "core/delayed_subflow.hpp"

#include <gtest/gtest.h>

#include "energy/device_profile.hpp"
#include "sim/simulation.hpp"

namespace emptcp::core {
namespace {

struct Harness {
  Harness()
      : eib(EnergyInfoBase::generate(
            energy::DeviceProfile::galaxy_s3().model())),
        predictor(sim, BandwidthPredictor::Config{}) {}

  DelayedSubflowManager make(DelayedSubflowManager::Config cfg) {
    DelayedSubflowManager::Hooks hooks;
    hooks.establish = [this] { ++established; };
    hooks.bytes_received = [this] { return bytes; };
    hooks.is_idle = [this] { return idle; };
    return DelayedSubflowManager(sim, eib, predictor, cfg,
                                 std::move(hooks));
  }

  sim::Simulation sim;
  EnergyInfoBase eib;
  BandwidthPredictor predictor;
  int established = 0;
  std::uint64_t bytes = 0;
  bool idle = false;
};

// Most tests pre-load the predictor with low WiFi samples: establishment
// requires a measured-and-not-good WiFi path (an unmeasured one keeps the
// manager rechecking, and a fast one postpones per §3.5).

void measure_wifi(Harness& h, double mbps, int n = 12) {
  for (int i = 0; i < n; ++i) {
    h.predictor.record_sample(net::InterfaceType::kWifi, mbps);
  }
}

TEST(DelayedSubflowTest, KappaCrossingEstablishes) {
  Harness h;
  measure_wifi(h, 0.5);  // bad WiFi: no postponement
  DelayedSubflowManager::Config cfg;
  cfg.kappa_bytes = 1024 * 1024;
  auto mgr = h.make(cfg);
  mgr.start();

  h.bytes = cfg.kappa_bytes - 1;
  mgr.on_progress();
  EXPECT_EQ(h.established, 0);

  h.bytes = cfg.kappa_bytes;
  mgr.on_progress();
  EXPECT_EQ(h.established, 1);
  EXPECT_TRUE(mgr.established());
}

TEST(DelayedSubflowTest, TauExpiryEstablishesWithoutKappa) {
  Harness h;
  measure_wifi(h, 0.5);
  DelayedSubflowManager::Config cfg;
  cfg.tau_s = 3.0;
  auto mgr = h.make(cfg);
  mgr.start();
  h.bytes = 100;  // far below kappa

  h.sim.run_until(sim::from_seconds(2.9));
  EXPECT_EQ(h.established, 0);
  h.sim.run_until(sim::from_seconds(3.1));
  EXPECT_EQ(h.established, 1);
  EXPECT_TRUE(mgr.timer_expired());
}

TEST(DelayedSubflowTest, IdleConnectionPostponesPastTau) {
  // §3.5: "eMPTCP also postpones cellular subflow establishment if the
  // current MPTCP connection is in an idle state ... even if the timer τ
  // expires."
  Harness h;
  measure_wifi(h, 0.5);
  DelayedSubflowManager::Config cfg;
  cfg.tau_s = 1.0;
  auto mgr = h.make(cfg);
  h.idle = true;
  mgr.start();
  h.sim.run_until(sim::seconds(20));
  EXPECT_EQ(h.established, 0);

  // Activity resumes: the next recheck establishes.
  h.idle = false;
  h.sim.run_until(sim::seconds(21));
  EXPECT_EQ(h.established, 1);
}

TEST(DelayedSubflowTest, UnmeasuredWifiPostponesUntilSamplesArrive) {
  Harness h;
  DelayedSubflowManager::Config cfg;
  cfg.tau_s = 1.0;
  auto mgr = h.make(cfg);
  mgr.start();
  h.bytes = 10 * 1024 * 1024;  // far past kappa
  mgr.on_progress();
  h.sim.run_until(sim::seconds(5));
  EXPECT_EQ(h.established, 0);  // no WiFi estimate yet: keep waiting

  measure_wifi(h, 0.5);  // bad WiFi measured: next recheck establishes
  h.sim.run_until(sim::seconds(6));
  EXPECT_EQ(h.established, 1);
}

TEST(DelayedSubflowTest, GoodWifiPostponesIndefinitely) {
  Harness h;
  measure_wifi(h, 15.0);  // well above any threshold
  DelayedSubflowManager::Config cfg;
  cfg.tau_s = 1.0;
  auto mgr = h.make(cfg);
  mgr.start();
  h.bytes = 64 * 1024 * 1024;
  mgr.on_progress();
  h.sim.run_until(sim::seconds(30));
  EXPECT_EQ(h.established, 0);
}

TEST(DelayedSubflowTest, EstablishHappensOnlyOnce) {
  Harness h;
  measure_wifi(h, 0.5);
  auto mgr = h.make(DelayedSubflowManager::Config{});
  mgr.start();
  h.bytes = 10 * 1024 * 1024;
  mgr.on_progress();
  mgr.on_progress();
  h.sim.run_until(sim::seconds(10));
  EXPECT_EQ(h.established, 1);
}

TEST(DelayedSubflowTest, StopCancelsPendingTimers) {
  Harness h;
  measure_wifi(h, 0.5);
  DelayedSubflowManager::Config cfg;
  cfg.tau_s = 1.0;
  auto mgr = h.make(cfg);
  mgr.start();
  mgr.stop();
  h.sim.run_until(sim::seconds(10));
  EXPECT_EQ(h.established, 0);
}

TEST(DelayedSubflowTest, Equation1MatchesPaperExample) {
  // §4.1: "given our experimental setting, the estimated condition based
  // on equation (1) to guarantee ten bandwidth samples is τ ≥ 2.67 s."
  // The paper doesn't list its B_W/R_W; Eq. 1 with IW10 (14480 B), φ=10,
  // B_W = 10 Mbps reproduces 2.67 s at R_W ≈ 190 ms (a far server over
  // congested WiFi). What matters is that our implementation of Eq. 1
  // hits the paper's number for a plausible operating point.
  const double tau = DelayedSubflowManager::minimum_tau_s(
      10.0, 0.19, 10 * 1448.0, 10);
  EXPECT_NEAR(tau, 2.67, 0.1);
}

TEST(DelayedSubflowTest, Equation1MonotoneInBandwidthAndPhi) {
  const double base =
      DelayedSubflowManager::minimum_tau_s(10.0, 0.05, 14480.0, 10);
  EXPECT_GT(DelayedSubflowManager::minimum_tau_s(100.0, 0.05, 14480.0, 10),
            base);
  EXPECT_GT(DelayedSubflowManager::minimum_tau_s(10.0, 0.05, 14480.0, 20),
            base);
  EXPECT_GT(DelayedSubflowManager::minimum_tau_s(10.0, 0.10, 14480.0, 10),
            base);
}

}  // namespace
}  // namespace emptcp::core
