#include "core/bandwidth_predictor.hpp"

#include <gtest/gtest.h>

#include <memory>

#include "support/testnet.hpp"
#include "tcp/tcp_socket.hpp"

namespace emptcp::core {
namespace {

using test::TestNet;

/// A subflow whose socket actually transfers data over the test network.
struct LiveSubflow {
  LiveSubflow(TestNet& net, net::Addr local, net::InterfaceType type,
              std::uint64_t download_bytes)
      : listener(net.server, test::kPort, [&, download_bytes](
                                              const net::Packet& syn) {
          server = tcp::TcpSocket::accept(net.sim, net.server,
                                          tcp::TcpSocket::Config{}, syn);
          server->send_app_data(download_bytes);
        }) {
    auto sock = std::make_unique<tcp::TcpSocket>(net.sim, net.client,
                                                 tcp::TcpSocket::Config{});
    tcp::TcpSocket* raw = sock.get();
    subflow = std::make_unique<mptcp::Subflow>(0, type, std::move(sock));
    raw->connect(local, 5001, test::kServerAddr, test::kPort);
  }

  tcp::TcpListener listener;
  std::unique_ptr<tcp::TcpSocket> server;
  std::unique_ptr<mptcp::Subflow> subflow;
};

TEST(BandwidthPredictorTest, NeverActivatedUsesOptimisticPrior) {
  TestNet net;
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  EXPECT_FALSE(pred.has_measurement(net::InterfaceType::kWifi));
  EXPECT_DOUBLE_EQ(pred.predicted_mbps(net::InterfaceType::kWifi), 5.0);
  EXPECT_DOUBLE_EQ(pred.predicted_mbps(net::InterfaceType::kLte), 5.0);
}

TEST(BandwidthPredictorTest, MeasuresActiveSubflowThroughput) {
  TestNet net(1, /*wifi=*/8.0, /*cell=*/8.0);
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  LiveSubflow live(net, test::kWifiAddr, net::InterfaceType::kWifi,
                   12'000'000);
  net.sim.run_until(sim::seconds(1));
  pred.attach_subflow(*live.subflow, *net.wifi_if);
  net.sim.run_until(sim::seconds(8));

  EXPECT_TRUE(pred.has_measurement(net::InterfaceType::kWifi));
  EXPECT_GT(pred.sample_count(net::InterfaceType::kWifi), 10u);
  // Steady-state prediction should be near the 8 Mbps bottleneck.
  EXPECT_NEAR(pred.predicted_mbps(net::InterfaceType::kWifi), 8.0, 3.5);
}

TEST(BandwidthPredictorTest, SamplingIntervalFromHandshakeRtt) {
  TestNet net;
  BandwidthPredictor::Config cfg;
  cfg.min_interval = sim::milliseconds(1);
  BandwidthPredictor pred(net.sim, cfg);
  LiveSubflow live(net, test::kWifiAddr, net::InterfaceType::kWifi,
                   4'000'000);
  net.sim.run_until(sim::seconds(1));
  ASSERT_TRUE(live.subflow->established());
  pred.attach_subflow(*live.subflow, *net.wifi_if);
  net.sim.run_until(sim::seconds(3));
  // Path RTT ~21 ms -> about (2000/21) ≈ 95 samples in 2 s.
  const std::size_t n = pred.sample_count(net::InterfaceType::kWifi);
  EXPECT_GT(n, 50u);
  EXPECT_LT(n, 200u);
}

TEST(BandwidthPredictorTest, BackupSubflowProducesNoSamples) {
  TestNet net;
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  LiveSubflow live(net, test::kCellAddr, net::InterfaceType::kLte,
                   4'000'000);
  net.sim.run_until(sim::seconds(1));
  live.subflow->set_backup(true);
  pred.attach_subflow(*live.subflow, *net.cell_if);
  net.sim.run_until(sim::seconds(5));
  EXPECT_EQ(pred.sample_count(net::InterfaceType::kLte), 0u);
  // Prediction falls back to the prior while suspended.
  EXPECT_DOUBLE_EQ(pred.predicted_mbps(net::InterfaceType::kLte), 5.0);
}

TEST(BandwidthPredictorTest, KeepsOldSamplesWhileSuspended) {
  TestNet net(1, 8.0, 8.0);
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  LiveSubflow live(net, test::kWifiAddr, net::InterfaceType::kWifi,
                   50'000'000);
  net.sim.run_until(sim::seconds(1));
  pred.attach_subflow(*live.subflow, *net.wifi_if);
  net.sim.run_until(sim::seconds(6));
  const double before = pred.predicted_mbps(net::InterfaceType::kWifi);
  const std::size_t n_before = pred.sample_count(net::InterfaceType::kWifi);
  ASSERT_GT(before, 3.0);

  live.subflow->set_backup(true);  // suspend: sampling pauses
  net.sim.run_until(sim::seconds(12));
  EXPECT_EQ(pred.sample_count(net::InterfaceType::kWifi), n_before);
  // Old observations still back the prediction (paper §3.2).
  EXPECT_NEAR(pred.predicted_mbps(net::InterfaceType::kWifi), before, 2.0);
}

TEST(BandwidthPredictorTest, ZeroSamplesRecordedWhenLinkStalls) {
  TestNet net(1, 8.0, 8.0);
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  LiveSubflow live(net, test::kWifiAddr, net::InterfaceType::kWifi,
                   50'000'000);
  net.sim.run_until(sim::seconds(1));
  pred.attach_subflow(*live.subflow, *net.wifi_if);
  net.sim.run_until(sim::seconds(5));
  // Stall the path completely; an active-but-starved subflow records
  // zero-throughput samples and the prediction collapses.
  net.wifi_down->set_loss_prob(1.0);
  net.wifi_up->set_loss_prob(1.0);
  net.sim.run_until(sim::seconds(15));
  EXPECT_LT(pred.predicted_mbps(net::InterfaceType::kWifi), 1.0);
}

TEST(BandwidthPredictorTest, RecordSampleFeedsForecaster) {
  TestNet net;
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  // Fewer than min_forecast_points aggregated observations: still prior.
  pred.record_sample(net::InterfaceType::kWifi, 3.0);
  pred.record_sample(net::InterfaceType::kWifi, 3.0);
  EXPECT_FALSE(pred.has_measurement(net::InterfaceType::kWifi));
  EXPECT_DOUBLE_EQ(pred.predicted_mbps(net::InterfaceType::kWifi), 5.0);
  pred.record_sample(net::InterfaceType::kWifi, 3.0);
  EXPECT_TRUE(pred.has_measurement(net::InterfaceType::kWifi));
  EXPECT_NEAR(pred.predicted_mbps(net::InterfaceType::kWifi), 3.0, 0.01);
}

TEST(BandwidthPredictorTest, DemandProbeGatesZeroSamples) {
  // Without demand, a silent interval is "idle", not "zero throughput":
  // the estimate must hold its last value.
  TestNet net(1, 8.0, 8.0);
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  bool demand = true;
  pred.add_demand_probe([&demand] { return demand; });

  LiveSubflow live(net, test::kWifiAddr, net::InterfaceType::kWifi,
                   4'000'000);
  net.sim.run_until(sim::seconds(1));
  pred.attach_subflow(*live.subflow, *net.wifi_if);
  net.sim.run_until(sim::from_seconds(4.0));  // still mid-transfer
  const double measured = pred.predicted_mbps(net::InterfaceType::kWifi);
  ASSERT_GT(measured, 3.0);

  // The application goes idle before the stream runs dry: the silence
  // that follows must not be recorded as zero throughput.
  demand = false;
  net.sim.run_until(sim::seconds(20));
  EXPECT_GT(pred.predicted_mbps(net::InterfaceType::kWifi), 3.0);
}

TEST(BandwidthPredictorTest, PeakHoldIgnoresBurstEdges) {
  // A bursty pattern of full-rate and edge (partial) windows must still
  // predict close to the sustained rate, thanks to peak-hold grouping.
  TestNet net;
  BandwidthPredictor::Config cfg;
  cfg.peak_hold_windows = 1;  // record_sample is already aggregated
  BandwidthPredictor pred(net.sim, cfg);
  for (int i = 0; i < 10; ++i) {
    pred.record_sample(net::InterfaceType::kWifi, 10.0);
    pred.record_sample(net::InterfaceType::kWifi, 10.0);
    pred.record_sample(net::InterfaceType::kWifi, 2.0);  // burst edge
  }
  // Even with alpha smoothing over the raw mix, the forecast stays within
  // the sustained band — and the live path (peak_hold_windows = 4) would
  // have absorbed the edges entirely.
  EXPECT_GT(pred.predicted_mbps(net::InterfaceType::kWifi), 4.0);
}

TEST(BandwidthPredictorTest, LastSampleExposedForDiagnostics) {
  TestNet net(1, 8.0, 8.0);
  BandwidthPredictor pred(net.sim, BandwidthPredictor::Config{});
  EXPECT_DOUBLE_EQ(pred.last_sample_mbps(net::InterfaceType::kWifi), 0.0);
  LiveSubflow live(net, test::kWifiAddr, net::InterfaceType::kWifi,
                   8'000'000);
  net.sim.run_until(sim::seconds(1));
  pred.attach_subflow(*live.subflow, *net.wifi_if);
  net.sim.run_until(sim::seconds(4));
  EXPECT_GT(pred.last_sample_mbps(net::InterfaceType::kWifi), 0.0);
}

}  // namespace
}  // namespace emptcp::core
